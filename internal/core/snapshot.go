package core

import (
	"fmt"
	"sort"

	"nemesis/internal/disk"
	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/obs"
	"nemesis/internal/sfs"
	"nemesis/internal/stretchdrv"
	"nemesis/internal/vm"
)

// Snapshot is the result of System.Fork: a complete, independent copy of the
// simulated machine at the fork instant, plus the identity maps callers need
// to translate parent-world handles (domains, drivers, stretches, swap files)
// into their forked twins. Forking a warmed world is how sweeps and the
// experiment server avoid re-paying boot: warm once, fork per cell.
type Snapshot struct {
	// Sys is the forked system. It shares nothing mutable with the parent
	// except copy-on-write disk chunks, which are immutable once shared, so
	// parent and fork may run on different goroutines.
	Sys *System
	// Dom, Driver, Stretch and File translate parent pointers to forked ones.
	Dom     map[*domain.Domain]*domain.Domain
	Driver  map[domain.Driver]domain.Driver
	Stretch map[*vm.Stretch]*vm.Stretch
	File    map[*sfs.SwapFile]*sfs.SwapFile
	// Stats describes the copy cost of this fork.
	Stats ForkStats
}

// ForkStats quantifies one fork's copying work.
type ForkStats struct {
	// FrameBytes is how much frame-store memory was copied outright.
	FrameBytes int64
	// SharedChunks is how many populated disk chunks were shared
	// copy-on-write instead of copied; SharedBytes is their total size —
	// the copying the CoW scheme avoided.
	SharedChunks int
	SharedBytes  int64
}

// Fork deep-copies the system at the current instant. The fork point must be
// quiesced: the simulator idle (not inside an event), every workload thread
// exited, no IO in flight, no revocation round open, and no crosstalk monitor
// or timeline recorder running. Service loops (the USD, each domain's
// mm-worker) cannot have their goroutine stacks cloned; they are respawned in
// the fork and re-derive their parked state, which at a quiesced instant is
// provably identical. Everything else — clock, event queue, random stream,
// page tables, TLB, frame contents, free lists, blok bitmaps, QoS accounting,
// telemetry — is copied exactly, so a forked world's future event stream is
// byte-identical to the future the parent would have had.
//
// The parent remains fully usable and may be forked again; sharing disk
// chunks CoW mutates only the parent's shared-flags, so concurrent Forks of
// one parent must be serialised by the caller (run the forks' workloads in
// parallel instead — that is safe).
func (sys *System) Fork() (*Snapshot, error) {
	if sys.Sim.Current() != nil {
		return nil, fmt.Errorf("core: Fork must be called from host context, not from inside the simulation")
	}
	if sys.NetSwap != nil {
		return nil, fmt.Errorf("core: cannot fork with the netswap fabric built — create remote stretches after forking")
	}
	if sys.monitor != nil {
		return nil, fmt.Errorf("core: cannot fork with a crosstalk monitor running — start it after forking")
	}
	if sys.recorder != nil {
		return nil, fmt.Errorf("core: cannot fork with a timeline recorder running — start it after forking")
	}
	allowed := map[string]bool{"usd": true}
	for _, dom := range sys.domains {
		allowed[dom.Name()+"/mm-worker"] = true
	}
	for _, name := range sys.Sim.LiveProcNames() {
		if !allowed[name] {
			return nil, fmt.Errorf("core: cannot fork with workload process %q still live — join all threads first", name)
		}
	}

	ns := sys.Sim.Fork()
	store, frameBytes := sys.Store.Fork()
	ramtab := sys.RamTab.Fork()
	reg, err := sys.Obs.Fork(ns.Now)
	if err != nil {
		return nil, err
	}
	frames, err := sys.Frames.Fork(ns, store, ramtab, reg)
	if err != nil {
		return nil, err
	}
	ts, vmaps, err := sys.TS.Fork(ramtab)
	if err != nil {
		return nil, err
	}
	var attr *obs.Attribution
	if reg != nil {
		attr = reg.Attr()
	}
	sched, acMap, claimed, err := sys.CPU.Fork(ns, attr)
	if err != nil {
		return nil, err
	}
	nd := sys.Disk.Fork(ns, reg)
	nu, chans, usdClaimed, err := sys.USD.Fork(ns, nd, reg)
	if err != nil {
		return nil, err
	}
	claimed = append(claimed, usdClaimed...)
	nfs, fileMap, err := sys.SFS.Fork(nu, chans)
	if err != nil {
		return nil, err
	}

	// Event accounting: every live callback event in the parent queue must
	// have been re-armed by exactly one subsystem fork. A mismatch means a
	// timer would silently vanish from (or be duplicated in) the forked
	// world; fail loudly instead.
	if err := checkClaimedSeqs(claimed, sys.Sim.PendingSeqs()); err != nil {
		return nil, err
	}

	sys2 := &System{
		Config:  sys.Config,
		Sim:     ns,
		Store:   store,
		RamTab:  ramtab,
		Frames:  frames,
		TS:      ts,
		SA:      ts.Stretches(),
		CPU:     sched,
		Disk:    nd,
		USD:     nu,
		SFS:     nfs,
		USDLog:  nu.Log,
		Obs:     reg,
		domains: make(map[mem.DomainID]*domain.Domain, len(sys.domains)),
		nextID:  sys.nextID,
	}
	frames.OnKill = func(id mem.DomainID) {
		if dom := sys2.domains[id]; dom != nil {
			dom.Kill()
		}
	}

	domMap := make(map[*domain.Domain]*domain.Domain, len(sys.domains))
	env := sys2.env()
	for id := mem.DomainID(1); id < sys.nextID; id++ {
		dom, ok := sys.domains[id]
		if !ok {
			continue
		}
		npd := vmaps.PD[dom.PD()]
		if npd == nil {
			return nil, fmt.Errorf("core: no forked protection domain for %q", dom.Name())
		}
		ncpu, err := sched.AdoptHandle(dom.CPU(), acMap)
		if err != nil {
			return nil, err
		}
		ndom, err := dom.Fork(env, npd, ncpu, frames.Lookup(id))
		if err != nil {
			return nil, err
		}
		sys2.domains[id] = ndom
		domMap[dom] = ndom
	}
	if sys2.tracker, err = sys.tracker.Fork(domMap); err != nil {
		return nil, err
	}

	drvMap := make(map[domain.Driver]domain.Driver)
	for id := mem.DomainID(1); id < sys.nextID; id++ {
		dom, ok := sys.domains[id]
		if !ok {
			continue
		}
		ndom := domMap[dom]
		for _, b := range dom.Bindings() {
			if forked, ok := drvMap[b.Driver]; ok {
				// A driver bound to several stretches forks once; extra
				// bindings re-point at the already-forked twin.
				pst := sys.SA.Lookup(b.SID)
				if nst := vmaps.Stretch[pst]; nst != nil {
					ndom.Bind(nst, forked)
				}
				continue
			}
			var forked domain.Driver
			switch drv := b.Driver.(type) {
			case *stretchdrv.Paged:
				forked, err = drv.Fork(ndom, vmaps, fileMap)
			case *stretchdrv.Mapped:
				forked, err = drv.Fork(ndom, vmaps, fileMap)
			case *stretchdrv.Physical:
				forked, err = drv.Fork(ndom, vmaps)
			case *stretchdrv.Nailed:
				forked, err = drv.Fork(ndom, vmaps)
			default:
				err = fmt.Errorf("core: cannot fork %q driver of domain %q — create it after forking", b.Driver.DriverName(), dom.Name())
			}
			if err != nil {
				return nil, err
			}
			drvMap[b.Driver] = forked
		}
	}

	// Drain the respawned service loops' bootstrap dispatches (all scheduled
	// at the fork instant): each runs to its park point without consuming
	// simulated time, leaving the fork parked exactly as the parent is.
	ns.Run(ns.Now())

	shared, _ := nd.SharedChunks()
	return &Snapshot{
		Sys:     sys2,
		Dom:     domMap,
		Driver:  drvMap,
		Stretch: vmaps.Stretch,
		File:    fileMap,
		Stats: ForkStats{
			FrameBytes:   frameBytes,
			SharedChunks: shared,
			SharedBytes:  int64(shared) * disk.ChunkBytes,
		},
	}, nil
}

// checkClaimedSeqs verifies the subsystems re-armed exactly the parent's live
// callback events.
func checkClaimedSeqs(claimed, pending []uint64) error {
	sort.Slice(claimed, func(i, j int) bool { return claimed[i] < claimed[j] })
	ok := len(claimed) == len(pending)
	if ok {
		for i := range claimed {
			if claimed[i] != pending[i] {
				ok = false
				break
			}
		}
	}
	if !ok {
		return fmt.Errorf("core: fork event accounting mismatch: subsystems re-armed seqs %v, parent queue holds %v (an unclaimed timer — e.g. a crosstalk monitor tick — cannot be carried across a fork)", claimed, pending)
	}
	return nil
}
