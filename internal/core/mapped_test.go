package core

import (
	"bytes"
	"testing"
	"time"

	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/stretchdrv"
	"nemesis/internal/vm"
)

// TestMappedFileStretch: write through the mapping, Sync, then map the same
// file into a second domain and verify the contents — mmap semantics end to
// end, including write-back ordering.
func TestMappedFileStretch(t *testing.T) {
	sys := smallSystem()
	writer, _ := sys.NewDomain("writer", cpuShare(), mem.Contract{Guaranteed: 4})
	file, err := sys.SFS.CreateSwapFile("data", 16*vm.PageSize, diskShare(), 1)
	if err != nil {
		t.Fatal(err)
	}
	st, drv, err := sys.NewMappedFileStretch(writer, file)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pages() != 16 {
		t.Fatalf("pages = %d", st.Pages())
	}
	pattern := func(pg, i int) byte { return byte((pg*31 + i) % 197) }
	var synced bool
	writer.Go("main", func(th *domain.Thread) {
		PreallocateFrames(th, 4)
		buf := make([]byte, vm.PageSize)
		for pg := 0; pg < 16; pg++ {
			for i := range buf {
				buf[i] = pattern(pg, i)
			}
			if err := th.WriteAt(st.PageBase(pg), buf); err != nil {
				t.Error(err)
				return
			}
		}
		if err := drv.Sync(th.Proc()); err != nil {
			t.Error(err)
			return
		}
		synced = true
	})
	sys.Run(30 * time.Second)
	if !synced {
		t.Fatal("writer did not finish")
	}
	// With 4 frames and 16 pages, eviction write-backs happened during the
	// writes; Sync flushed the resident remainder.
	if drv.Stats.PageOuts < 16 {
		t.Fatalf("write-backs = %d, want >= 16", drv.Stats.PageOuts)
	}
	if drv.Stats.Evictions == 0 {
		t.Fatal("no evictions with 4 frames over 16 pages")
	}

	// A second domain maps the same file and must see the writer's data —
	// the file is the unit of sharing.
	reader, _ := sys.NewDomain("reader", cpuShare(), mem.Contract{Guaranteed: 4})
	rst, rdrv, err := sys.NewMappedFileStretch(reader, file)
	if err != nil {
		t.Fatal(err)
	}
	var verified bool
	reader.Go("main", func(th *domain.Thread) {
		PreallocateFrames(th, 4)
		buf := make([]byte, vm.PageSize)
		for pg := 0; pg < 16; pg++ {
			if err := th.ReadAt(rst.PageBase(pg), buf); err != nil {
				t.Error(err)
				return
			}
			for i := range buf {
				if buf[i] != pattern(pg, i) {
					t.Errorf("page %d byte %d = %d, want %d", pg, i, buf[i], pattern(pg, i))
					return
				}
			}
		}
		verified = true
	})
	sys.Run(30 * time.Second)
	if !verified {
		t.Fatal("reader did not verify")
	}
	if rdrv.Stats.PageIns < 16 {
		t.Fatalf("reader file reads = %d", rdrv.Stats.PageIns)
	}
	sys.Shutdown()
	sys.RunUntilIdle(1 << 22)
}

// TestMappedCleanEvictionsSkipWriteBack: pages only read are evicted
// without disk writes.
func TestMappedCleanEvictionsSkipWriteBack(t *testing.T) {
	sys := smallSystem()
	d, _ := sys.NewDomain("reader", cpuShare(), mem.Contract{Guaranteed: 2})
	file, _ := sys.SFS.CreateSwapFile("ro", 8*vm.PageSize, diskShare(), 1)
	st, drv, err := sys.NewMappedFileStretch(d, file)
	if err != nil {
		t.Fatal(err)
	}
	d.Go("main", func(th *domain.Thread) {
		PreallocateFrames(th, 2)
		for pass := 0; pass < 3; pass++ {
			if err := th.Touch(st.Base(), 8*vm.PageSize, vm.AccessRead); err != nil {
				t.Error(err)
				return
			}
		}
	})
	sys.Run(30 * time.Second)
	if drv.Stats.PageOuts != 0 {
		t.Fatalf("clean pages wrote back %d times", drv.Stats.PageOuts)
	}
	if drv.Stats.Evictions < 16 {
		t.Fatalf("evictions = %d", drv.Stats.Evictions)
	}
	sys.Shutdown()
	sys.RunUntilIdle(1 << 22)
}

// TestMappedFileTooSmall: binding a stretch larger than the file fails.
func TestMappedFileTooSmall(t *testing.T) {
	sys := smallSystem()
	d, _ := sys.NewDomain("a", cpuShare(), mem.Contract{Guaranteed: 2})
	file, _ := sys.SFS.CreateSwapFile("tiny", 2*vm.PageSize, diskShare(), 1)
	st, err := d.NewStretch(4 * vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stretchdrv.NewMapped(d, st, file); err == nil {
		t.Fatal("oversized mapping accepted")
	}
}

// TestSharedTextStretch: a nailed stretch shared read-only into another
// domain: same bytes, no copies, no faults for the reader; writes are
// fatal.
func TestSharedTextStretch(t *testing.T) {
	sys := smallSystem()
	owner, _ := sys.NewDomain("owner", cpuShare(), mem.Contract{Guaranteed: 8})
	reader, _ := sys.NewDomain("reader", cpuShare(), mem.Contract{Guaranteed: 1})

	var st *vm.Stretch
	ready := false
	owner.Go("init", func(th *domain.Thread) {
		var err error
		st, _, err = sys.NewNailedStretch(th, 4*vm.PageSize)
		if err != nil {
			t.Error(err)
			return
		}
		text := bytes.Repeat([]byte{0xEE}, 4*vm.PageSize)
		if err := th.WriteAt(st.Base(), text); err != nil {
			t.Error(err)
			return
		}
		ready = true
	})
	sys.Run(5 * time.Second)
	if !ready {
		t.Fatal("owner init failed")
	}
	if err := sys.ShareStretch(owner, st, reader, vm.Read|vm.Execute); err != nil {
		t.Fatal(err)
	}

	framesBefore := reader.MemClient().Allocated()
	faultsBefore := reader.Stats().Faults
	var got byte
	reader.Go("read", func(th *domain.Thread) {
		b, err := th.ReadByteAt(st.Base() + 12345)
		if err != nil {
			t.Error(err)
			return
		}
		got = b
	})
	sys.Run(5 * time.Second)
	if got != 0xEE {
		t.Fatalf("shared read = %#x", got)
	}
	if reader.MemClient().Allocated() != framesBefore {
		t.Fatal("sharing consumed frames")
	}
	if reader.Stats().Faults != faultsBefore {
		t.Fatal("reader faulted on resident shared text")
	}

	// Writing shared text is a protection fault: fatal, no safety net.
	reader.Go("vandal", func(th *domain.Thread) {
		th.WriteByteAt(st.Base(), 0)
	})
	sys.Run(5 * time.Second)
	if !reader.Killed() {
		t.Fatal("writer to shared text survived")
	}
	if owner.Killed() {
		t.Fatal("owner killed by reader's fault")
	}
	sys.Shutdown()
	sys.RunUntilIdle(1 << 22)
}
