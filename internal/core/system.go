// Package core is the public facade of the Nemesis self-paging
// reproduction: it wires the simulator, physical and virtual memory, the
// translation system, the CPU scheduler, the disk, the USD and the SFS into
// one System, and provides the high-level operations a downstream user
// needs — create domains with QoS contracts, create stretches backed by
// nailed/physical/paged stretch drivers, and run the simulation.
package core

import (
	"fmt"
	"io"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/cpu"
	"nemesis/internal/disk"
	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/netswap"
	"nemesis/internal/obs"
	"nemesis/internal/sfs"
	"nemesis/internal/sim"
	"nemesis/internal/stretchdrv"
	"nemesis/internal/trace"
	"nemesis/internal/usd"
	"nemesis/internal/vm"
)

// Config sizes a System.
type Config struct {
	// Seed drives every random choice; identical seeds give identical runs.
	Seed int64
	// MemoryFrames is the number of 8 KB frames of main memory.
	MemoryFrames int
	// DiskGeometry describes the drive; disk.VP3221() is the paper's.
	DiskGeometry disk.Geometry
	// SwapPartition is the disk region the SFS manages. Zero means "the
	// second half of the disk".
	SwapPartition usd.Extent
	// Costs is the CPU cost model; cpu.DefaultCosts() is the paper's.
	Costs cpu.Costs
	// VALow/VAHigh bound the single global virtual address space used for
	// stretch allocation.
	VALow, VAHigh vm.VA
	// RevocationTimeout is the deadline T for intrusive revocation. It
	// must be long enough to cover cleaning dirty pages through the USD —
	// i.e. comfortably more than a disk QoS period — or cooperative
	// domains get killed for waiting on their own disk slice.
	RevocationTimeout time.Duration
	// Telemetry enables the observability registry: fault spans, metric
	// series and the crosstalk monitor. Off by default; when off, the
	// fault fast path carries no instrumentation cost at all.
	Telemetry bool
	// NetSwap configures the remote-paging fabric (link, remote swap
	// server, client defaults) for stretches that page to a remote or
	// tiered backing. Nil means netswap.DefaultConfig() when such a
	// stretch is first created; the fabric is only built on demand, so
	// purely local systems carry no server machinery.
	NetSwap *netswap.Config
	// SpanCap bounds the retained-span ring (0 = obs.DefaultSpanCap).
	SpanCap int
}

// DefaultConfig returns the paper's evaluation platform: 64 MB of memory
// and the Quantum VP3221 disk, with swap on the second half of the disk.
func DefaultConfig() Config {
	g := disk.VP3221()
	return Config{
		Seed:              1,
		MemoryFrames:      8192, // 64 MB
		DiskGeometry:      g,
		SwapPartition:     usd.Extent{Start: g.TotalBlocks / 2, Count: g.TotalBlocks / 2},
		Costs:             cpu.DefaultCosts(),
		VALow:             0x0000001000000000,
		VAHigh:            0x0000002000000000,
		RevocationTimeout: 600 * time.Millisecond,
	}
}

// System is a complete simulated Nemesis machine.
type System struct {
	Config Config
	Sim    *sim.Simulator
	Store  *mem.FrameStore
	RamTab *mem.RamTab
	Frames *mem.FramesAllocator
	TS     *vm.TranslationSystem
	SA     *vm.StretchAllocator
	CPU    *cpu.Scheduler
	Disk   *disk.Disk
	USD    *usd.USD
	SFS    *sfs.SFS
	// USDLog receives the USD scheduler trace (transactions, laxity,
	// allocations) used to regenerate the paper's figures.
	USDLog *trace.Log
	// Obs is the telemetry registry, nil unless Config.Telemetry is set.
	Obs *obs.Registry
	// NetSwap is the remote-paging fabric, nil until a remote or tiered
	// stretch is created (or EnableNetSwap is called).
	NetSwap *netswap.Fabric

	domains  map[mem.DomainID]*domain.Domain
	nextID   mem.DomainID
	monitor  *obs.CrosstalkMonitor
	recorder *obs.Recorder
	tracker  *domain.ActivityTracker
}

// ForceTelemetry, when set, overrides Config.Telemetry for every System
// built afterwards. It exists for whole-suite invariant tests (attribution
// conservation across every experiment cell): telemetry is purely
// observational — it schedules no simulator events and draws no randomness —
// so forcing it on must not change any experiment's output.
var ForceTelemetry bool

// ShutdownHook, when set, is invoked at the start of every System.Shutdown.
// Whole-suite tests use it to audit each system (conservation checks) at the
// moment its experiment completes. The hook must be safe for concurrent
// calls when suites fan out across workers.
var ShutdownHook func(*System)

// New builds a System from cfg.
func New(cfg Config) *System {
	if cfg.MemoryFrames == 0 {
		cfg = DefaultConfig()
	}
	if ForceTelemetry {
		cfg.Telemetry = true
	}
	s := sim.New(cfg.Seed)
	store := mem.NewFrameStore(cfg.MemoryFrames)
	ramtab := mem.NewRamTab(cfg.MemoryFrames)
	frames := mem.NewFramesAllocator(s, store, ramtab)
	ts := vm.NewTranslationSystem(ramtab)
	sa := vm.NewStretchAllocator(ts, cfg.VALow, cfg.VAHigh)
	sched := cpu.NewScheduler(s)
	sched.Costs = cfg.Costs
	var reg *obs.Registry
	if cfg.Telemetry {
		reg = obs.NewRegistry(s.Now)
		if cfg.SpanCap > 0 {
			reg.SetSpanCap(cfg.SpanCap)
		}
		frames.SetObs(reg)
		// Exact sim-time attribution: spans drive the fault states, the CPU
		// scheduler drives running/runnable, admission starts the clock.
		sched.Attr = reg.EnableAttribution()
	}
	d := disk.New(s, cfg.DiskGeometry)
	d.SetObs(reg)
	u := usd.New(s, d)
	u.Obs = reg
	log := &trace.Log{}
	u.Log = log
	swapPart := cfg.SwapPartition
	if swapPart.Count == 0 {
		swapPart = usd.Extent{Start: cfg.DiskGeometry.TotalBlocks / 2, Count: cfg.DiskGeometry.TotalBlocks / 2}
	}
	fs := sfs.New(u, swapPart)

	sys := &System{
		Config:  cfg,
		Sim:     s,
		Store:   store,
		RamTab:  ramtab,
		Frames:  frames,
		TS:      ts,
		SA:      sa,
		CPU:     sched,
		Disk:    d,
		USD:     u,
		SFS:     fs,
		USDLog:  log,
		Obs:     reg,
		domains: make(map[mem.DomainID]*domain.Domain),
		nextID:  1, // 0 is the system domain
	}
	if reg != nil {
		sys.tracker = domain.NewActivityTracker()
	}
	if cfg.RevocationTimeout > 0 {
		frames.RevocationTimeout = cfg.RevocationTimeout
	}
	frames.OnKill = func(id mem.DomainID) {
		if dom := sys.domains[id]; dom != nil {
			dom.Kill()
		}
	}
	return sys
}

// env bundles what domains need.
func (sys *System) env() domain.Env {
	return domain.Env{
		Sim:    sys.Sim,
		TS:     sys.TS,
		SA:     sys.SA,
		Store:  sys.Store,
		RamTab: sys.RamTab,
		Costs:  sys.Config.Costs,
		Obs:    sys.Obs,
	}
}

// NewDomain admits a domain with the given CPU contract and physical-memory
// contract, creating its protection domain and memory-management machinery.
func (sys *System) NewDomain(name string, cpuQoS atropos.QoS, ct mem.Contract) (*domain.Domain, error) {
	id := sys.nextID
	pd, err := sys.TS.NewProtectionDomain()
	if err != nil {
		return nil, err
	}
	cpuDom, err := sys.CPU.Admit(name, cpuQoS)
	if err != nil {
		sys.TS.DestroyProtectionDomain(pd)
		return nil, err
	}
	dom := domain.New(sys.env(), id, name, pd, cpuDom, nil)
	memc, err := sys.Frames.Admit(id, ct, dom)
	if err != nil {
		sys.CPU.Remove(name)
		sys.TS.DestroyProtectionDomain(pd)
		return nil, err
	}
	dom.SetMemClient(memc)
	memc.SetTelemetryName(name)
	sys.domains[id] = dom
	sys.nextID++
	sys.tracker.Register(dom)
	if sys.recorder != nil {
		sys.trackDomain(sys.recorder, dom)
	}
	return dom, nil
}

// Domain returns a domain by id, or nil.
func (sys *System) Domain(id mem.DomainID) *domain.Domain { return sys.domains[id] }

// Domains returns all live domains (including killed ones, until removed).
func (sys *System) Domains() []*domain.Domain {
	out := make([]*domain.Domain, 0, len(sys.domains))
	for id := mem.DomainID(1); id < sys.nextID; id++ {
		if d, ok := sys.domains[id]; ok {
			out = append(out, d)
		}
	}
	return out
}

// StretchKind selects the driver family a PagerSpec builds.
type StretchKind int

const (
	// KindAuto infers the kind from the populated spec fields: Thread set
	// means nailed, File means mapped, Window > 0 means streaming,
	// SwapBytes > 0 means paged, else physical.
	KindAuto StretchKind = iota
	KindPaged
	KindStreaming
	KindPhysical
	KindNailed
	KindMapped
)

// PagerSpec describes a stretch plus the self-pager that backs it: the
// driver family, the swap or file backing, the disk contracts, and the
// composable engine policies (replacement, writeback, write clustering).
// The zero value of every policy field is the paper's driver: FIFO
// replacement, demand writeback, no clustering.
type PagerSpec struct {
	// Size is the stretch size in bytes. For mapped stretches, zero means
	// "the whole file".
	Size uint64
	// Kind picks the driver family; KindAuto infers it from the fields.
	Kind StretchKind

	// Policy, Writeback and ClusterSize parameterise the pager engine
	// (paged, streaming and mapped kinds).
	Policy      stretchdrv.PolicyKind
	Writeback   stretchdrv.WritebackKind
	ClusterSize int

	// SwapBytes and DiskQoS size and contract the swap file (paged,
	// streaming). For BackingTiered they size the local tier.
	SwapBytes int64
	DiskQoS   atropos.QoS

	// Backing selects where a paged stretch cleans to: the local swap
	// file (default), the remote swap server, or the tiered composition
	// of both. Non-default values build the system's netswap fabric on
	// first use.
	Backing BackingKind
	// Remote overrides the fabric's default RPC options (window, timeout,
	// retries, batch) for this stretch's client. Nil = fabric defaults.
	Remote *netswap.RemoteOptions
	// Tiered overrides the fabric's default tiering options (deadline
	// budget, cooldown) for BackingTiered. Nil = fabric defaults.
	Tiered *netswap.TieredOptions

	// Window and PrefetchQoS configure the streaming driver's read-ahead
	// pipeline.
	Window      int
	PrefetchQoS atropos.QoS

	// File is the backing file for a mapped stretch.
	File *sfs.SwapFile

	// Thread is the calling thread for a nailed stretch (frame allocation
	// may involve revocation waits, so it must run with activations on).
	Thread *domain.Thread
}

// BackingKind selects a paged stretch's backing store.
type BackingKind string

const (
	// BackingSwap pages to a local swap file (the default).
	BackingSwap BackingKind = ""
	// BackingRemote pages to the remote swap server over the netswap
	// fabric's link.
	BackingRemote BackingKind = "remote"
	// BackingTiered pages to a small local swap tier backed by the large
	// remote store (demote-on-clean / promote-on-fault, degrading to the
	// local tier when the remote misses its deadline budget).
	BackingTiered BackingKind = "tiered"
)

// kind resolves KindAuto from the populated fields.
func (spec PagerSpec) kind() StretchKind {
	if spec.Kind != KindAuto {
		return spec.Kind
	}
	switch {
	case spec.Thread != nil:
		return KindNailed
	case spec.File != nil:
		return KindMapped
	case spec.Window > 0:
		return KindStreaming
	case spec.SwapBytes > 0 || spec.Backing != BackingSwap:
		return KindPaged
	default:
		return KindPhysical
	}
}

// engineOpts extracts the pager-engine options from the spec.
func (spec PagerSpec) engineOpts() stretchdrv.PagerOptions {
	return stretchdrv.PagerOptions{
		Policy:      spec.Policy,
		Writeback:   spec.Writeback,
		ClusterSize: spec.ClusterSize,
	}
}

// NewStretch is the single stretch builder: it allocates a stretch for dom
// and binds the driver the spec describes. The five historical constructors
// (NewPagedStretch and friends) are one-line wrappers over it. The returned
// driver is the concrete *stretchdrv type behind the domain.Driver
// interface.
func (sys *System) NewStretch(dom *domain.Domain, spec PagerSpec) (*vm.Stretch, domain.Driver, error) {
	switch spec.kind() {
	case KindPaged:
		st, paged, err := sys.newPaged(dom, spec)
		return st, paged, err

	case KindStreaming:
		if spec.Backing != BackingSwap {
			return nil, nil, fmt.Errorf("core: streaming stretches need a local swap backing, not %q", spec.Backing)
		}
		st, paged, err := sys.newPaged(dom, spec)
		if err != nil {
			return nil, nil, err
		}
		window := spec.Window
		if window < 1 {
			window = 1
		}
		pfCh, err := sys.SFS.OpenAlias(paged.Swap(), paged.Swap().Name()+"-pf", spec.PrefetchQoS, window)
		if err != nil {
			return nil, nil, err
		}
		return st, stretchdrv.NewStreaming(dom, paged, pfCh, window), nil

	case KindPhysical:
		st, err := dom.NewStretch(spec.Size)
		if err != nil {
			return nil, nil, err
		}
		return st, stretchdrv.NewPhysical(dom, st), nil

	case KindNailed:
		t := spec.Thread
		if t == nil {
			return nil, nil, fmt.Errorf("core: nailed stretch needs PagerSpec.Thread")
		}
		if t.Domain() != dom {
			return nil, nil, fmt.Errorf("core: PagerSpec.Thread belongs to %q, not %q", t.Domain().Name(), dom.Name())
		}
		st, err := dom.NewStretch(spec.Size)
		if err != nil {
			return nil, nil, err
		}
		drv, err := stretchdrv.BindNailed(t.Proc(), dom, st)
		if err != nil {
			return nil, nil, err
		}
		return st, drv, nil

	case KindMapped:
		if spec.File == nil {
			return nil, nil, fmt.Errorf("core: mapped stretch needs PagerSpec.File")
		}
		size := spec.Size
		if size == 0 {
			size = uint64(spec.File.Blocks()) * disk.BlockSize
		}
		st, err := dom.NewStretch(size)
		if err != nil {
			return nil, nil, err
		}
		drv, err := stretchdrv.NewMappedOpts(dom, st, spec.File, spec.engineOpts())
		if err != nil {
			return nil, nil, err
		}
		return st, drv, nil

	default:
		return nil, nil, fmt.Errorf("core: unknown stretch kind %d", spec.Kind)
	}
}

// EnableNetSwap builds the remote-paging fabric (if not yet built) from
// Config.NetSwap or the defaults, and returns it. Remote and tiered
// stretches call it implicitly.
func (sys *System) EnableNetSwap() (*netswap.Fabric, error) {
	if sys.NetSwap != nil {
		return sys.NetSwap, nil
	}
	cfg := netswap.DefaultConfig()
	if sys.Config.NetSwap != nil {
		cfg = *sys.Config.NetSwap
	}
	fab, err := netswap.New(sys.Sim, sys.Obs, cfg)
	if err != nil {
		return nil, err
	}
	sys.NetSwap = fab
	return fab, nil
}

// newPaged builds the stretch + backing + paged driver of a spec (the shared
// base of the paged and streaming kinds). Local swap files use pipeline
// depth 1, as pagers cannot pipeline; remote backings pipeline through their
// RPC window instead.
func (sys *System) newPaged(dom *domain.Domain, spec PagerSpec) (*vm.Stretch, *stretchdrv.Paged, error) {
	st, err := dom.NewStretch(spec.Size)
	if err != nil {
		return nil, nil, err
	}

	newSwap := func() (*stretchdrv.SwapBacking, error) {
		swapName := fmt.Sprintf("%s-swap-%d", dom.Name(), st.ID())
		swap, err := sys.SFS.CreateSwapFile(swapName, spec.SwapBytes, spec.DiskQoS, 1)
		if err != nil {
			return nil, err
		}
		return stretchdrv.NewSwapBacking(swap), nil
	}
	newRemote := func() (*netswap.RemoteBacking, error) {
		fab, err := sys.EnableNetSwap()
		if err != nil {
			return nil, err
		}
		client := fmt.Sprintf("%s-net-%d", dom.Name(), st.ID())
		return fab.NewRemoteBacking(client, dom.Name(), spec.Remote)
	}

	var backing stretchdrv.Backing
	switch spec.Backing {
	case BackingSwap:
		b, err := newSwap()
		if err != nil {
			return nil, nil, err
		}
		backing = b

	case BackingRemote:
		b, err := newRemote()
		if err != nil {
			return nil, nil, err
		}
		backing = b

	case BackingTiered:
		if spec.SwapBytes <= 0 {
			return nil, nil, fmt.Errorf("core: tiered backing needs SwapBytes to size the local tier")
		}
		local, err := newSwap()
		if err != nil {
			return nil, nil, err
		}
		remote, err := newRemote()
		if err != nil {
			return nil, nil, err
		}
		topt := sys.NetSwap.Config().Tiered
		if spec.Tiered != nil {
			topt = *spec.Tiered
		}
		backing = netswap.NewTieredBacking(sys.Sim, sys.Obs, local, remote, dom.Name(), topt)

	default:
		return nil, nil, fmt.Errorf("core: unknown backing kind %q", spec.Backing)
	}

	drv, err := stretchdrv.NewPagedBacking(dom, st, backing, spec.engineOpts())
	if err != nil {
		return nil, nil, err
	}
	return st, drv, nil
}

// NewPagedStretch allocates a stretch of size bytes for dom, creates a swap
// file of swapBytes with disk QoS q, and binds a paged stretch driver with
// default policies.
func (sys *System) NewPagedStretch(dom *domain.Domain, size uint64, swapBytes int64, q atropos.QoS) (*vm.Stretch, *stretchdrv.Paged, error) {
	st, drv, err := sys.NewStretch(dom, PagerSpec{Kind: KindPaged, Size: size, SwapBytes: swapBytes, DiskQoS: q})
	if err != nil {
		return nil, nil, err
	}
	return st, drv.(*stretchdrv.Paged), nil
}

// NewStreamingStretch allocates a stretch backed by a stream-paging driver:
// a paged stretch driver plus a prefetch pipeline of the given window depth
// on a second IO channel (contract prefetchQ) over the same swap file.
func (sys *System) NewStreamingStretch(dom *domain.Domain, size uint64, swapBytes int64, demandQ, prefetchQ atropos.QoS, window int) (*vm.Stretch, *stretchdrv.Streaming, error) {
	st, drv, err := sys.NewStretch(dom, PagerSpec{Kind: KindStreaming, Size: size, SwapBytes: swapBytes, DiskQoS: demandQ, PrefetchQoS: prefetchQ, Window: window})
	if err != nil {
		return nil, nil, err
	}
	return st, drv.(*stretchdrv.Streaming), nil
}

// NewPhysicalStretch allocates a stretch backed by a physical stretch
// driver (demand-zero, no backing store).
func (sys *System) NewPhysicalStretch(dom *domain.Domain, size uint64) (*vm.Stretch, *stretchdrv.Physical, error) {
	st, drv, err := sys.NewStretch(dom, PagerSpec{Kind: KindPhysical, Size: size})
	if err != nil {
		return nil, nil, err
	}
	return st, drv.(*stretchdrv.Physical), nil
}

// NewNailedStretch allocates a stretch fully backed and pinned at bind
// time. It must be called from a thread (it allocates frames, which may
// involve revocation waits).
func (sys *System) NewNailedStretch(t *domain.Thread, size uint64) (*vm.Stretch, *stretchdrv.Nailed, error) {
	st, drv, err := sys.NewStretch(t.Domain(), PagerSpec{Kind: KindNailed, Size: size, Thread: t})
	if err != nil {
		return nil, nil, err
	}
	return st, drv.(*stretchdrv.Nailed), nil
}

// NewMappedFileStretch maps an SFS file into a fresh stretch of dom (the
// memory-mapped-file path): faults demand-read the file, evictions and
// Sync write dirty pages back, all under the file's own disk contract.
func (sys *System) NewMappedFileStretch(dom *domain.Domain, file *sfs.SwapFile) (*vm.Stretch, *stretchdrv.Mapped, error) {
	st, drv, err := sys.NewStretch(dom, PagerSpec{Kind: KindMapped, File: file})
	if err != nil {
		return nil, nil, err
	}
	return st, drv.(*stretchdrv.Mapped), nil
}

// ShareStretch grants another domain's protection domain rights on a
// stretch the owner holds meta on — the single-address-space sharing the
// paper relies on for "widespread sharing of text". The grantee does not
// acquire a stretch-driver binding: sharing is intended for resident
// (nailed) stretches, where the grantee never faults; a page fault taken by
// the grantee on someone else's stretch is fatal to the grantee, exactly as
// the no-safety-net rule prescribes.
func (sys *System) ShareStretch(owner *domain.Domain, st *vm.Stretch, with *domain.Domain, r vm.Rights) error {
	_, err := sys.TS.SetRights(owner.PD(), with.PD(), st.ID(), r)
	return err
}

// PreallocateFrames acquires n frames for the calling thread's domain — the
// initialisation pattern time-sensitive applications use so they never wait
// on revocation later.
func PreallocateFrames(t *domain.Thread, n int) error {
	for i := 0; i < n; i++ {
		if _, err := t.Domain().MemClient().AllocFrame(t.Proc()); err != nil {
			return err
		}
	}
	return nil
}

// Run advances the simulation by d.
func (sys *System) Run(d time.Duration) { sys.Sim.RunFor(d) }

// RunUntilIdle drains the event queue (bounded by maxEvents).
func (sys *System) RunUntilIdle(maxEvents int) { sys.Sim.RunUntilIdle(maxEvents) }

// CheckAttribution asserts the attribution conservation invariant — every
// domain's accounts sum exactly to its elapsed sim time — returning the
// first violation, or nil (also nil when telemetry is off).
func (sys *System) CheckAttribution() error {
	return sys.Obs.Attr().CheckConservation()
}

// WriteAttributionFolded renders the per-domain attribution as folded
// stacks (`domain;state[;hop] microseconds`), the input format of standard
// flamegraph tools. Requires Config.Telemetry.
func (sys *System) WriteAttributionFolded(w io.Writer) error {
	if sys.Obs == nil || sys.Obs.Attr() == nil {
		return fmt.Errorf("core: attribution requires telemetry (Config.Telemetry)")
	}
	return sys.Obs.Attr().WriteFolded(w)
}

// AttributionProfiles snapshots every domain's attribution in admission
// order (nil when telemetry is off).
func (sys *System) AttributionProfiles() []obs.DomainProfile {
	return sys.Obs.Attr().Profiles()
}

// Shutdown stops background service loops (the USD, the crosstalk monitor
// and the netswap server, if running) so RunUntilIdle terminates.
func (sys *System) Shutdown() {
	if ShutdownHook != nil {
		ShutdownHook(sys)
	}
	if sys.recorder != nil {
		sys.recorder.Stop()
	}
	if sys.monitor != nil {
		sys.monitor.Stop()
	}
	if sys.NetSwap != nil {
		sys.NetSwap.Stop()
	}
	sys.USD.Stop()
	// Unwind every remaining process goroutine. Experiment results are read
	// before or during Shutdown, and killed processes execute no further
	// workload, so this cannot perturb any measurement — it only returns the
	// goroutines a finished simulation would otherwise park forever.
	sys.Sim.Shutdown()
}
