package core

import (
	"time"

	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/sim"
)

// Rebalancer is a centralised answer to the paper's closing problem: "the
// strategy of allocating resources directly to applications certainly gives
// them more control, but means that optimisations for global benefit are
// not directly enforced". It watches per-domain fault rates and, when one
// domain thrashes while another sits on idle optimistic frames, directs a
// revocation round at the idle holder so the allocator's normal protocol
// (transparent, else intrusive with deadline) moves memory to where it
// earns its keep. Guaranteed frames are never touched, so no contract is
// violated — the rebalancer only re-targets the *optimistic* pool.
type Rebalancer struct {
	sys *System

	// Interval is how often the policy runs.
	Interval time.Duration
	// FaultRateThreshold (faults/second) above which a domain counts as
	// thrashing, and at or below which it counts as a donation candidate.
	FaultRateThreshold float64
	// Batch is how many frames to move per round.
	Batch int

	// Moves counts revocation rounds directed.
	Moves int64

	lastFaults map[mem.DomainID]int64
	stopped    bool
}

// StartRebalancer launches the policy as a system-domain process.
func (sys *System) StartRebalancer(interval time.Duration) *Rebalancer {
	r := &Rebalancer{
		sys:                sys,
		Interval:           interval,
		FaultRateThreshold: 20,
		Batch:              4,
		lastFaults:         make(map[mem.DomainID]int64),
	}
	sys.Sim.Spawn("rebalancer", r.run)
	return r
}

// Stop halts the policy at its next tick.
func (r *Rebalancer) Stop() { r.stopped = true }

func (r *Rebalancer) run(p *sim.Proc) {
	for !r.stopped {
		p.Sleep(r.Interval)
		r.tick()
	}
}

// tick runs one round of the policy.
func (r *Rebalancer) tick() {
	if r.sys.Frames.FreeFrames() > 0 {
		return // no memory pressure: nothing to do
	}
	var starved *domain.Domain
	var donor *domain.Domain
	var starvedRate float64
	for _, d := range r.sys.Domains() {
		if d.Killed() {
			continue
		}
		faults := d.Stats().PageFaults
		rate := float64(faults-r.lastFaults[d.ID()]) / r.Interval.Seconds()
		r.lastFaults[d.ID()] = faults
		mc := d.MemClient()
		ct := mc.Contract()
		switch {
		case rate > r.FaultRateThreshold && mc.Allocated() < ct.Guaranteed+ct.Optimistic:
			// Thrashing with unexercised optimistic quota.
			if starved == nil || rate > starvedRate {
				starved, starvedRate = d, rate
			}
		case rate <= r.FaultRateThreshold && mc.HoldsOptimistic():
			if donor == nil {
				donor = d
			}
		}
	}
	if starved == nil || donor == nil || starved == donor {
		return
	}
	if err := r.sys.Frames.RequestRevocation(donor.ID(), r.Batch); err == nil {
		r.Moves++
	}
}
