package serve

import (
	"container/list"
	"sync"
)

// Entry is one cached outcome: the canonical result body plus any side
// artifacts, all immutable once stored.
type Entry struct {
	Key   string
	Body  []byte // canonical result JSON (experiments.EncodeResult)
	Trace []byte // Perfetto trace artifact, if captured
	Audit []byte // audit-log artifact, if captured
}

// Cache is a bounded LRU keyed on spec content hashes. A hit serves a
// finished result in microseconds; eviction only ever discards bytes that
// can be recomputed from the spec, so correctness never depends on
// residency.
type Cache struct {
	mu     sync.Mutex
	max    int
	ll     *list.List // front = most recently used; values are *Entry
	items  map[string]*list.Element
	hits   int64
	misses int64
}

// NewCache returns an LRU holding at most max entries (min 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the entry for key, refreshing its recency, and records a hit
// or miss.
func (c *Cache) Get(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*Entry), true
	}
	c.misses++
	return nil, false
}

// Put stores an entry, evicting the least recently used beyond the bound.
// Storing an existing key refreshes it.
func (c *Cache) Put(e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.Key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[e.Key] = c.ll.PushFront(e)
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*Entry).Key)
	}
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit/miss counters.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
