package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"nemesis/internal/experiments"
)

// The warm-world pool is the second exploitation of core.System.Fork (the
// first is the experiments sweeps): the result cache already answers
// repeat submissions of *identical* specs, but specs that share only their
// expensive warm prefix — a fig. 7 run at 10 s and the same run at 40 s —
// still re-paid the whole ~10-minute (simulated) initialisation phase.
// The pool keeps a bounded LRU of *resident simulations*: warmed
// experiments.PagingWarm worlds keyed by the content hash of the spec with
// its measured window stripped. A poolable job forks the resident world
// and measures only its own window. Because fork-then-measure is
// byte-identical to cold-boot-then-measure (the fork-equivalence tests pin
// this), pooled answers are the same bytes experiments.RunSpec produces —
// residency is purely a latency optimisation, never part of result
// identity.

// warmPrefixKey content-addresses the warm prefix of a spec: the hex
// SHA-256 of the canonical JSON of the normalized spec with Measure
// cleared. ok is false for specs whose world the pool cannot hold —
// only untraced figure 7/8 specs are poolable today (their warm phase is
// by far the most expensive, and the traced variants need the legacy
// in-place harness).
func warmPrefixKey(spec experiments.Spec) (string, bool) {
	if spec.Kind != experiments.KindFigure || spec.Trace || (spec.Figure != 7 && spec.Figure != 8) {
		return "", false
	}
	spec.Measure = 0 // the measured window rides on the shared warm prefix
	b, err := CanonicalJSON(spec)
	if err != nil {
		return "", false
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), true
}

// warmEntry is one resident warmed world. Its mutex serializes
// construction and forking: forking flips the parent's disk chunks to
// copy-on-write, a parent-side mutation that must not race — the forks
// themselves then measure concurrently without coordination.
type warmEntry struct {
	key  string
	mu   sync.Mutex
	warm *experiments.PagingWarm
}

// warmPool is the bounded LRU of resident warmed worlds.
type warmPool struct {
	mu     sync.Mutex
	max    int
	order  []*warmEntry // front = most recently used
	items  map[string]*warmEntry
	hits   int64
	misses int64
}

func newWarmPool(max int) *warmPool {
	if max < 1 {
		max = 1
	}
	return &warmPool{max: max, items: make(map[string]*warmEntry)}
}

// fork returns a fresh fork of the resident world for key, building and
// admitting the world with build on first use. The pool lock covers only
// the LRU bookkeeping; warming and forking happen under the entry's own
// lock, so concurrent jobs on *different* prefixes never serialize.
func (p *warmPool) fork(key string, build func() (*experiments.PagingWarm, error)) (*experiments.PagingWarm, error) {
	p.mu.Lock()
	e, ok := p.items[key]
	if ok {
		p.hits++
		p.touchLocked(e)
	} else {
		p.misses++
		e = &warmEntry{key: key}
		p.items[key] = e
		p.order = append([]*warmEntry{e}, p.order...)
		for len(p.order) > p.max {
			victim := p.order[len(p.order)-1]
			p.order = p.order[:len(p.order)-1]
			delete(p.items, victim.key)
			// Shut the evicted world down off the pool lock; its entry
			// lock fences any fork still in flight. A racer that already
			// held the entry rebuilds it as an unpooled one-shot — correct,
			// just unshared.
			go func() {
				victim.mu.Lock()
				if victim.warm != nil {
					victim.warm.Sys.Shutdown()
					victim.warm = nil
				}
				victim.mu.Unlock()
			}()
		}
	}
	p.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.warm == nil {
		w, err := build()
		if err != nil {
			// Never cache failures: drop the entry so the next submission
			// retries the warm-up.
			p.mu.Lock()
			if p.items[key] == e {
				delete(p.items, key)
				for i, o := range p.order {
					if o == e {
						p.order = append(p.order[:i], p.order[i+1:]...)
						break
					}
				}
			}
			p.mu.Unlock()
			return nil, err
		}
		e.warm = w
	}
	return e.warm.Fork()
}

func (p *warmPool) touchLocked(e *warmEntry) {
	for i, o := range p.order {
		if o == e {
			copy(p.order[1:i+1], p.order[:i])
			p.order[0] = e
			return
		}
	}
}

// stats returns cumulative pool counters.
func (p *warmPool) stats() (resident int, hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.order), p.hits, p.misses
}

// close shuts every resident world down.
func (p *warmPool) close() {
	p.mu.Lock()
	order := p.order
	p.order, p.items = nil, make(map[string]*warmEntry)
	p.mu.Unlock()
	for _, e := range order {
		e.mu.Lock()
		if e.warm != nil {
			e.warm.Sys.Shutdown()
			e.warm = nil
		}
		e.mu.Unlock()
	}
}
