package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// metricFamily renders one Prometheus family header followed by its samples.
type metricFamily struct {
	name, typ, help string
	samples         []metricSample
}

type metricSample struct {
	labels string // rendered `{k="v"}` block, "" for none
	value  float64
}

func (f *metricFamily) add(labels string, v float64) {
	f.samples = append(f.samples, metricSample{labels: labels, value: v})
}

func (f *metricFamily) write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
		return err
	}
	for _, s := range f.samples {
		if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, strconv.FormatFloat(s.value, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}

// jobStates is the fixed label order of the nemesis_jobs family: every state
// is always exported (zeros included) so dashboards never see series appear.
var jobStates = []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCanceled}

// WriteMetrics renders the live metrics plane in Prometheus text exposition
// format (0.0.4): job lifecycle counts, queue and worker occupancy, result-
// cache and warm-world hit counters, and per-live-job sweep progress — cells
// done/total plus the cell completion rate derived from the job's wall-clock
// runtime (the closest live proxy for simulation throughput the progress
// callbacks expose). Families and samples come out in a fixed order; only
// the rate values vary between scrapes of an idle server.
func (s *Server) WriteMetrics(w io.Writer) error {
	hits, misses := s.cache.Stats()
	cacheLen := s.cache.Len()
	var warmResident int
	var warmHits, warmMisses int64
	if s.warm != nil {
		warmResident, warmHits, warmMisses = s.warm.stats()
	}

	type liveJob struct {
		id          string
		done, total int
		rate        float64
	}
	states := map[JobState]int{}
	var live []liveJob
	s.mu.Lock()
	queueLen := len(s.queue)
	for _, j := range s.jobs {
		ev := j.Snapshot()
		states[ev.State]++
		if ev.State != JobQueued && ev.State != JobRunning {
			continue
		}
		lj := liveJob{id: ev.ID, done: ev.Done, total: ev.Total}
		if at := j.Started(); !at.IsZero() {
			if dt := time.Since(at).Seconds(); dt > 0 {
				lj.rate = float64(ev.Done) / dt
			}
		}
		live = append(live, lj)
	}
	s.mu.Unlock()
	sort.Slice(live, func(i, k int) bool { return live[i].id < live[k].id })

	jobs := metricFamily{name: "nemesis_jobs", typ: "gauge",
		help: "Jobs ever submitted, by lifecycle state."}
	for _, st := range jobStates {
		jobs.add(fmt.Sprintf(`{state=%q}`, st), float64(states[st]))
	}
	queue := metricFamily{name: "nemesis_queue_len", typ: "gauge",
		help: "Jobs waiting for a worker."}
	queue.add("", float64(queueLen))
	queueCap := metricFamily{name: "nemesis_queue_capacity", typ: "gauge",
		help: "Queued-job bound before submissions are rejected."}
	queueCap.add("", float64(s.cfg.QueueDepth))
	workers := metricFamily{name: "nemesis_workers", typ: "gauge",
		help: "Concurrent job slots."}
	workers.add("", float64(s.cfg.Workers))
	rejected := metricFamily{name: "nemesis_rejected_total", typ: "counter",
		help: "Submissions refused because the queue was full."}
	rejected.add("", float64(s.rejected.Load()))
	runs := metricFamily{name: "nemesis_runs_total", typ: "counter",
		help: "Simulations actually executed (cache hits and coalesced submissions bypass this)."}
	runs.add("", float64(s.runs.Load()))

	cacheEntries := metricFamily{name: "nemesis_cache_entries", typ: "gauge",
		help: "Results resident in the content-addressed cache."}
	cacheEntries.add("", float64(cacheLen))
	cacheHits := metricFamily{name: "nemesis_cache_hits_total", typ: "counter",
		help: "Submissions answered from the result cache."}
	cacheHits.add("", float64(hits))
	cacheMisses := metricFamily{name: "nemesis_cache_misses_total", typ: "counter",
		help: "Submissions that missed the result cache."}
	cacheMisses.add("", float64(misses))

	warmWorlds := metricFamily{name: "nemesis_warm_worlds", typ: "gauge",
		help: "Warmed simulations resident in the fork pool."}
	warmWorlds.add("", float64(warmResident))
	warmHitsF := metricFamily{name: "nemesis_warm_hits_total", typ: "counter",
		help: "Jobs that forked a resident warmed world instead of cold-booting."}
	warmHitsF.add("", float64(warmHits))
	warmMissesF := metricFamily{name: "nemesis_warm_misses_total", typ: "counter",
		help: "Poolable jobs that had to warm their world first."}
	warmMissesF.add("", float64(warmMisses))

	cellsDone := metricFamily{name: "nemesis_job_cells_done", typ: "gauge",
		help: "Sweep cells completed by each live (queued or running) job."}
	cellsTotal := metricFamily{name: "nemesis_job_cells_total", typ: "gauge",
		help: "Sweep cells each live job will run in total (0 until the sweep starts)."}
	cellsRate := metricFamily{name: "nemesis_job_cells_per_second", typ: "gauge",
		help: "Cell completion rate of each live job over its wall-clock runtime."}
	for _, lj := range live {
		labels := fmt.Sprintf(`{job=%q}`, lj.id)
		cellsDone.add(labels, float64(lj.done))
		cellsTotal.add(labels, float64(lj.total))
		cellsRate.add(labels, lj.rate)
	}

	for _, f := range []*metricFamily{
		&jobs, &queue, &queueCap, &workers, &rejected, &runs,
		&cacheEntries, &cacheHits, &cacheMisses,
		&warmWorlds, &warmHitsF, &warmMissesF,
		&cellsDone, &cellsTotal, &cellsRate,
	} {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.WriteMetrics(w)
}
