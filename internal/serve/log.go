package serve

import (
	"context"
	"net/http"
	"time"
)

// requestJob carries the job ID a handler resolved for the current request,
// so the access log can key every line by job.
type requestJob struct{ id string }

type requestJobKey struct{}

// noteJob records the job a handler touched for the access log; a no-op
// when logging is disabled (the context then has no holder).
func noteJob(r *http.Request, id string) {
	if rj, ok := r.Context().Value(requestJobKey{}).(*requestJob); ok {
		rj.id = id
	}
}

// statusWriter captures the response status for the access log. It passes
// Flush through — the SSE progress stream depends on it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withLogging wraps the API in structured request logging: one slog line
// per request with method, path, status and duration, keyed by job ID
// whenever the request resolved to one. Nil logger = no wrapping, no cost.
func (s *Server) withLogging(h http.Handler) http.Handler {
	logger := s.cfg.Logger
	if logger == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rj := &requestJob{}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), requestJobKey{}, rj)))
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"duration_ms", float64(time.Since(start).Microseconds()) / 1e3,
		}
		if rj.id != "" {
			attrs = append(attrs, "job", rj.id)
		}
		logger.Info("request", attrs...)
	})
}

// logJob emits one job lifecycle line (submit, run, finish) when logging is
// enabled.
func (s *Server) logJob(msg string, j *Job, extra ...any) {
	if s.cfg.Logger == nil {
		return
	}
	attrs := append([]any{"job", j.ID, "key", j.Key, "kind", j.Spec.Kind}, extra...)
	s.cfg.Logger.Info(msg, attrs...)
}
