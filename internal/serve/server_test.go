package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nemesis/internal/experiments"
	"nemesis/internal/experiments/sweep"
)

// cheapSpec is a cluster cell small enough to simulate in milliseconds.
func cheapSpec(seed int64) experiments.Spec {
	return experiments.Spec{
		Kind:              experiments.KindCluster,
		Machines:          1,
		DomainsPerMachine: 2,
		Servers:           1,
		Measure:           experiments.Duration(50 * time.Millisecond),
		Seed:              seed,
	}
}

func postSpec(t *testing.T, ts *httptest.Server, path string, spec experiments.Spec) *http.Response {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put(&Entry{Key: "a", Body: []byte("A")})
	c.Put(&Entry{Key: "b", Body: []byte("B")})
	if _, ok := c.Get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put(&Entry{Key: "c", Body: []byte("C")})
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction despite being LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	if n := c.Len(); n != 2 {
		t.Errorf("len = %d, want 2", n)
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d hits/%d misses, want 2/1", hits, misses)
	}
}

// TestRunCacheHit pins the cache-correctness acceptance criterion: two
// submissions of an identical spec produce byte-identical bodies, the
// second marked as a hit with no new simulation.
func TestRunCacheHit(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := cheapSpec(1)
	first := postSpec(t, ts, "/run", spec)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d", first.StatusCode)
	}
	if xc := first.Header.Get("X-Cache"); xc != "miss" {
		t.Errorf("first run X-Cache = %q, want miss", xc)
	}
	body1 := readBody(t, first)

	// Resubmit with noisy-but-equivalent spelling: explicit defaults plus
	// irrelevant fields must still hit the same cache line.
	resp2, err := ts.Client().Post(ts.URL+"/run", "application/json", strings.NewReader(
		`{"seed":1,"measure":"50ms","servers":1,"domains_per_machine":2,"machines":1,"kind":"cluster","figure":7}`))
	if err != nil {
		t.Fatal(err)
	}
	if xc := resp2.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("second run X-Cache = %q, want hit", xc)
	}
	body2 := readBody(t, resp2)
	if !bytes.Equal(body1, body2) {
		t.Error("cache hit returned different bytes")
	}
	if runs := s.Runs(); runs != 1 {
		t.Errorf("runs = %d, want 1 (second submission must not simulate)", runs)
	}
}

// TestSingleFlight pins the coalescing criterion: N concurrent identical
// submissions execute exactly one sweep.
func TestSingleFlight(t *testing.T) {
	release := make(chan struct{})
	var ran sync.WaitGroup
	ran.Add(1)
	var once sync.Once
	s := newServer(Config{Workers: 2}, func(ctx context.Context, spec experiments.Spec, workers int) (*experiments.Outcome, error) {
		once.Do(ran.Done)
		<-release
		return &experiments.Outcome{Result: &experiments.Result{Spec: spec}}, nil
	})
	defer s.Close()

	spec := cheapSpec(7)
	first, coalesced, err := s.Submit(spec)
	if err != nil || coalesced {
		t.Fatalf("first submit: %v coalesced=%v", err, coalesced)
	}
	ran.Wait() // job is in a worker, blocked on release
	const n = 40
	for i := 0; i < n; i++ {
		j, coalesced, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !coalesced || j != first {
			t.Fatalf("submission %d: coalesced=%v job=%s, want the in-flight job %s", i, coalesced, j.ID, first.ID)
		}
	}
	close(release)
	<-first.Finished()
	if runs := s.Runs(); runs != 1 {
		t.Errorf("runs = %d, want 1 for %d concurrent identical submissions", runs, n+1)
	}
}

// TestQueueBound pins graceful degradation: with one busy worker and the
// queue at depth, further submissions get 429 + Retry-After, and distinct
// specs already accepted all finish.
func TestQueueBound(t *testing.T) {
	release := make(chan struct{})
	s := newServer(Config{Workers: 1, QueueDepth: 2}, func(ctx context.Context, spec experiments.Spec, workers int) (*experiments.Outcome, error) {
		<-release
		return &experiments.Outcome{Result: &experiments.Result{Spec: spec}}, nil
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Fill: one running + two queued. The runner may not have dequeued the
	// first job yet, so accept up to 3 successes before demanding 429s.
	var accepted, rejected []int64
	for i := int64(0); i < 6; i++ {
		resp := postSpec(t, ts, "/jobs", cheapSpec(100+i))
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted = append(accepted, i)
		case http.StatusTooManyRequests:
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Error("429 without Retry-After")
			}
			rejected = append(rejected, i)
		default:
			t.Fatalf("submission %d: unexpected status %d", i, resp.StatusCode)
		}
		readBody(t, resp)
		if i == 0 {
			// Give the single worker a moment to dequeue job 0 so the
			// occupancy picture is deterministic: 1 running + depth 2.
			deadline := time.Now().Add(2 * time.Second)
			for len(s.queue) != 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
		}
	}
	if len(accepted) != 3 {
		t.Errorf("accepted %d submissions (%v), want 3 (1 running + queue depth 2)", len(accepted), accepted)
	}
	if len(rejected) != 3 {
		t.Errorf("rejected %d submissions (%v), want 3", len(rejected), rejected)
	}
	close(release)
	for _, i := range accepted {
		j, _, err := s.Submit(cheapSpec(100 + i)) // coalesces onto the live job
		if err != nil {
			t.Fatal(err)
		}
		select {
		case <-j.Finished():
		case <-time.After(5 * time.Second):
			t.Fatalf("accepted job %d never finished", i)
		}
	}
}

// TestSSEProgress drives a 5-cell fake sweep and asserts the event stream
// carries per-cell completions up to 5/5 and a terminal done event.
func TestSSEProgress(t *testing.T) {
	step := make(chan struct{})
	s := newServer(Config{Workers: 1}, func(ctx context.Context, spec experiments.Spec, workers int) (*experiments.Outcome, error) {
		_, err := sweep.MapWorkersContext(ctx, 1, make([]int, 5), func(_ context.Context, i int) (int, error) {
			<-step
			return i, nil
		})
		if err != nil {
			return nil, err
		}
		return &experiments.Outcome{Result: &experiments.Result{Spec: spec}}, nil
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, _, err := s.Submit(cheapSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Get(ts.URL + "/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	go func() {
		for i := 0; i < 5; i++ {
			step <- struct{}{}
		}
	}()

	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			events = append(events, ev)
			if ev.State == JobDone || ev.State == JobFailed {
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	last := events[len(events)-1]
	if last.State != JobDone || last.Done != 5 || last.Total != 5 {
		t.Errorf("terminal event = %+v, want done 5/5", last)
	}
	sawProgress := false
	for _, ev := range events {
		if ev.State == JobRunning && ev.Total == 5 && ev.Done > 0 {
			sawProgress = true
		}
	}
	if !sawProgress {
		t.Errorf("no per-cell progress event observed in %+v", events)
	}
}

func TestCancelRunningJob(t *testing.T) {
	s := newServer(Config{Workers: 1}, func(ctx context.Context, spec experiments.Spec, workers int) (*experiments.Outcome, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, _, err := s.Submit(cheapSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is running, then cancel over HTTP.
	deadline := time.Now().Add(5 * time.Second)
	for j.Snapshot().State != JobRunning && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+j.ID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	select {
	case <-j.Finished():
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled job never finished")
	}
	if st := j.Snapshot().State; st != JobCanceled {
		t.Errorf("state = %s, want canceled", st)
	}
	// A cancelled run must not poison the cache: resubmitting simulates.
	if e, ok := s.cache.Get(j.Key); ok {
		t.Errorf("cancelled job cached an entry: %+v", e)
	}
}

// TestCLIAndServerBytesIdentical pins the satellite contract: the CLI JSON
// export path (experiments.RunSpec + EncodeResult) and the HTTP API return
// byte-identical bodies for the same spec.
func TestCLIAndServerBytesIdentical(t *testing.T) {
	spec := experiments.Spec{
		Kind:              experiments.KindCluster,
		Machines:          2,
		DomainsPerMachine: 10,
		Measure:           experiments.Duration(100 * time.Millisecond),
		Seed:              3,
	}
	out, err := experiments.RunSpec(context.Background(), spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	cliBody, err := experiments.EncodeResult(out.Result)
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp := postSpec(t, ts, "/run", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d", resp.StatusCode)
	}
	apiBody := readBody(t, resp)
	if !bytes.Equal(cliBody, apiBody) {
		t.Errorf("CLI and API bodies differ:\nCLI:\n%s\nAPI:\n%s", cliBody, apiBody)
	}
}

func TestTraceAndAuditArtifacts(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := experiments.Spec{
		Kind:    experiments.KindFigure,
		Figure:  8,
		Measure: experiments.Duration(2 * time.Second),
		Trace:   true,
	}
	resp := postSpec(t, ts, "/jobs", spec)
	var sub submitResponse
	if err := json.Unmarshal(readBody(t, resp), &sub); err != nil {
		t.Fatal(err)
	}
	j, ok := s.Job(sub.ID)
	if !ok {
		t.Fatalf("job %s unknown", sub.ID)
	}
	select {
	case <-j.Finished():
	case <-time.After(2 * time.Minute):
		t.Fatal("figure job never finished")
	}

	for _, path := range []string{"/trace", "/audit"} {
		resp, err := ts.Client().Get(ts.URL + "/jobs/" + sub.ID + path)
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, resp.StatusCode, body)
		}
		var v any
		if err := json.Unmarshal(body, &v); err != nil {
			t.Errorf("%s artifact is not JSON: %v", path, err)
		}
	}

	// An untraced spec has no artifacts: explicit 404, not an empty body.
	resp2 := postSpec(t, ts, "/run", cheapSpec(1))
	readBody(t, resp2)
	var id string
	s.mu.Lock()
	for _, job := range s.jobs {
		if job.Spec.Kind == experiments.KindCluster {
			id = job.ID
		}
	}
	s.mu.Unlock()
	aresp, err := ts.Client().Get(ts.URL + "/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, aresp)
	if aresp.StatusCode != http.StatusNotFound {
		t.Errorf("untraced trace fetch: status %d, want 404", aresp.StatusCode)
	}
}

func TestBadSpecRejected(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"kind":"warp"}`))
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d (%s), want 400", resp.StatusCode, body)
	}
	if resp2, err := ts.Client().Get(ts.URL + "/jobs/nope"); err == nil {
		readBody(t, resp2)
		if resp2.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job: status %d, want 404", resp2.StatusCode)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 9})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	readBody(t, postSpec(t, ts, "/run", cheapSpec(5)))
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.Unmarshal(readBody(t, resp), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["queue_depth"].(float64) != 9 || stats["runs"].(float64) != 1 {
		t.Errorf("stats = %v", stats)
	}
	var health bytes.Buffer
	hr, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Write(readBody(t, hr))
	if !strings.Contains(health.String(), "ok") {
		t.Errorf("healthz = %q", health.String())
	}
}
