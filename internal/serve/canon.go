// Package serve is the experiments-as-a-service daemon behind
// cmd/nemesis-serve: an HTTP/JSON API where clients submit experiment
// specs, stream progress, and fetch results, traces and audit logs.
//
// Because every experiment cell is a deterministic pure function of its
// normalized spec, results are content-addressable: the spec is
// canonicalized (defaults explicit, durations normalized, keys sorted) and
// hashed, a bounded LRU serves repeat submissions from that hash without
// re-simulating, and single-flight coalescing makes N concurrent identical
// submissions run the sweep exactly once. A bounded worker-pool job queue
// on top degrades gracefully under load (429 + Retry-After) instead of
// forking unbounded goroutines.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"nemesis/internal/experiments"
)

// CanonicalJSON encodes v as deterministic compact JSON: object keys
// sorted, no insignificant whitespace, numbers preserved digit-for-digit.
// Two values that encoding/json would render with the same content in any
// key order canonicalize to identical bytes — the property spec hashing
// needs.
func CanonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := writeCanonical(&buf, tree); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeCanonical(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case nil:
		buf.WriteString("null")
	case bool:
		if x {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case json.Number:
		buf.WriteString(x.String())
	case string:
		b, err := json.Marshal(x)
		if err != nil {
			return err
		}
		buf.Write(b)
	case []any:
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonical(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return err
			}
			buf.Write(kb)
			buf.WriteByte(':')
			if err := writeCanonical(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	default:
		return fmt.Errorf("serve: cannot canonicalize %T", v)
	}
	return nil
}

// SpecKey normalizes a spec and returns its content-address: the hex
// SHA-256 of the canonical JSON of the normalized spec. Specs that describe
// the same experiment — whatever their field order, duration spelling, or
// default-vs-explicit values — share a key, so they share a cache entry.
func SpecKey(s experiments.Spec) (string, experiments.Spec, error) {
	if err := s.Normalize(); err != nil {
		return "", experiments.Spec{}, err
	}
	b, err := CanonicalJSON(s)
	if err != nil {
		return "", experiments.Spec{}, err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), s, nil
}
