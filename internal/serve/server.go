package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nemesis/internal/experiments"
	"nemesis/internal/experiments/sweep"
)

// Config sizes the daemon. The zero value is usable: every field has a
// default.
type Config struct {
	// Workers is the number of jobs simulated concurrently
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the jobs waiting for a worker; submissions beyond
	// it are rejected with 429 + Retry-After (default 256).
	QueueDepth int
	// CacheEntries bounds the result LRU (default 512).
	CacheEntries int
	// JobTimeout caps one job's wall-clock run (default 10m). A timed-out
	// job fails; its cells stop at the next cell boundary.
	JobTimeout time.Duration
	// SweepWorkers caps each job's sweep fan-out (default 0 =
	// NEMESIS_SWEEP_WORKERS or GOMAXPROCS). Results are byte-identical at
	// any value.
	SweepWorkers int
	// WarmWorlds bounds the LRU of resident warmed simulations that
	// poolable specs fork instead of cold-booting (default 8, negative
	// disables). Residency only affects latency: pooled and unpooled
	// answers are byte-identical.
	WarmWorlds int
	// Logger receives structured request and job lifecycle logs, every
	// line keyed by job ID once a request resolves to one. Nil (the
	// default) disables logging entirely.
	Logger *slog.Logger
}

func (c *Config) fillDefaults() {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 256
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 512
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.WarmWorlds == 0 {
		c.WarmWorlds = 8
	}
}

// ErrQueueFull rejects submissions beyond the advertised queue bound.
var ErrQueueFull = errors.New("serve: job queue full")

// Server is the experiments-as-a-service engine: spec → hash → cache /
// single-flight / bounded queue → sweep. It is transport-independent;
// Handler exposes it over HTTP.
type Server struct {
	cfg   Config
	run   runFunc
	cache *Cache
	// warm is the resident warm-world pool, nil when disabled or when the
	// server runs a stub runner (tests): the pool bypasses runFunc, so it
	// only exists alongside the production runner.
	warm *warmPool

	mu     sync.Mutex
	jobs   map[string]*Job // every job ever submitted, by id
	active map[string]*Job // queued/running job per spec key (single-flight)
	seq    int64

	queue      chan *Job
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	runs     atomic.Int64 // simulations actually started (cache/coalesce bypass this)
	rejected atomic.Int64 // submissions refused with ErrQueueFull
}

// runFunc is the job runner — experiments.RunSpec in production, a stub in
// queue/SSE tests.
type runFunc func(ctx context.Context, spec experiments.Spec, workers int) (*experiments.Outcome, error)

// New starts a server and its worker pool.
func New(cfg Config) *Server {
	s := newServer(cfg, experiments.RunSpec)
	if s.cfg.WarmWorlds > 0 {
		s.warm = newWarmPool(s.cfg.WarmWorlds)
	}
	return s
}

func newServer(cfg Config, run runFunc) *Server {
	cfg.fillDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		run:        run,
		cache:      NewCache(cfg.CacheEntries),
		jobs:       make(map[string]*Job),
		active:     make(map[string]*Job),
		queue:      make(chan *Job, cfg.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close stops accepting work, cancels in-flight jobs at their next cell
// boundary, and waits for the workers to unwind.
func (s *Server) Close() {
	s.baseCancel()
	s.wg.Wait()
	if s.warm != nil {
		s.warm.close()
	}
}

// Runs reports how many simulations the server actually executed — the
// counter cache-correctness tests assert on.
func (s *Server) Runs() int64 { return s.runs.Load() }

// Submit content-addresses a spec and returns its job. Outcomes:
//
//   - cache hit: a fresh job already in the terminal done state, Cached.
//   - coalesced: an identical spec is queued or running; that same job is
//     returned (true) and the underlying sweep runs exactly once.
//   - fresh: a new job entered the queue.
//   - ErrQueueFull: the queue is at its advertised bound.
func (s *Server) Submit(spec experiments.Spec) (job *Job, coalesced bool, err error) {
	key, norm, err := SpecKey(spec)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.active[key]; ok {
		return j, true, nil
	}
	if e, ok := s.cache.Get(key); ok {
		j := newJob(s.nextIDLocked(), key, norm)
		j.Cached = true
		j.state = JobDone
		j.entry = e
		close(j.finished)
		s.jobs[j.ID] = j
		return j, false, nil
	}
	j := newJob(s.nextIDLocked(), key, norm)
	select {
	case s.queue <- j:
	default:
		s.rejected.Add(1)
		return nil, false, ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.active[key] = j
	return j, false, nil
}

// nextIDLocked mints a job id; callers hold s.mu.
func (s *Server) nextIDLocked() string {
	s.seq++
	return fmt.Sprintf("j%d", s.seq)
}

// Job returns a submitted job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

func (s *Server) runJob(j *Job) {
	defer func() {
		s.mu.Lock()
		if s.active[j.Key] == j {
			delete(s.active, j.Key)
		}
		s.mu.Unlock()
	}()

	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	defer cancel()
	if !j.start(cancel) {
		return // cancelled while queued
	}
	ctx = sweep.WithProgress(ctx, j.progress)
	s.runs.Add(1)
	s.logJob("job running", j)
	began := time.Now()
	var out *experiments.Outcome
	var err error
	if key, poolable := warmPrefixKey(j.Spec); poolable && s.warm != nil {
		out, err = s.runWarmFigure(key, j)
	} else {
		out, err = s.run(ctx, j.Spec, s.cfg.SweepWorkers)
	}
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			j.markCanceled("canceled mid-run")
		case errors.Is(err, context.DeadlineExceeded):
			j.fail(fmt.Sprintf("job exceeded its %v timeout", s.cfg.JobTimeout))
		default:
			j.fail(err.Error())
		}
		s.logJob("job finished", j, "state", j.Snapshot().State,
			"duration_ms", float64(time.Since(began).Microseconds())/1e3, "error", err.Error())
		return
	}
	body, err := experiments.EncodeResult(out.Result)
	if err != nil {
		j.fail(err.Error())
		return
	}
	e := &Entry{Key: j.Key, Body: body, Trace: out.Trace, Audit: out.Audit}
	s.cache.Put(e)
	j.complete(e)
	s.logJob("job finished", j, "state", j.Snapshot().State,
		"duration_ms", float64(time.Since(began).Microseconds())/1e3)
}

// runWarmFigure answers a poolable figure job by forking the resident
// warmed world for its prefix (warming it on first use) and measuring only
// the job's own window. The result bytes are identical to what the full
// runner would produce for the same spec; only the boot phase is skipped.
func (s *Server) runWarmFigure(key string, j *Job) (*experiments.Outcome, error) {
	world, err := s.warm.fork(key, func() (*experiments.PagingWarm, error) {
		return experiments.WarmPagingSpec(j.Spec)
	})
	if err != nil {
		return nil, err
	}
	res, err := experiments.FigureFromWarm(world, j.Spec)
	if err != nil {
		return nil, err
	}
	j.progress(1, 1) // match the single-cell sweep contract
	return &experiments.Outcome{Result: res}, nil
}

// ---- HTTP layer ----

// submitResponse is the POST /jobs reply.
type submitResponse struct {
	Event
	Key       string `json:"key"`
	Cached    bool   `json:"cached"`
	Coalesced bool   `json:"coalesced"`
}

// Handler returns the HTTP API:
//
//	POST   /jobs             submit a spec; 202 {id,key,state,cached,coalesced}
//	GET    /jobs/{id}        job status {id,state,done,total,error}
//	GET    /jobs/{id}/events SSE progress stream until the job is terminal
//	GET    /jobs/{id}/result canonical result JSON (X-Cache: hit|miss)
//	GET    /jobs/{id}/trace  Perfetto trace artifact (specs with trace:true)
//	GET    /jobs/{id}/audit  audit-log JSON artifact
//	DELETE /jobs/{id}        cancel a queued/running job
//	POST   /run              submit and wait: the result body in one round trip
//	GET    /healthz          liveness
//	GET    /stats            cache/queue/run counters
//	GET    /metrics          Prometheus text exposition (jobs, queue, cache, warm pool)
//
// With Config.Logger set, every request is logged through it — keyed by job
// ID once the request resolves to one.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleJobArtifact(func(e *Entry) []byte { return e.Trace }))
	mux.HandleFunc("GET /jobs/{id}/audit", s.handleJobArtifact(func(e *Entry) []byte { return e.Audit }))
	mux.HandleFunc("DELETE /jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.withLogging(mux)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) submitFromRequest(w http.ResponseWriter, r *http.Request) (*Job, bool, bool) {
	var spec experiments.Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad spec: %v", err))
		return nil, false, false
	}
	j, coalesced, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return nil, false, false
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, false, false
	}
	noteJob(r, j.ID)
	return j, coalesced, true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	j, coalesced, ok := s.submitFromRequest(w, r)
	if !ok {
		return
	}
	setCacheHeader(w, j)
	status := http.StatusAccepted
	if j.Cached {
		status = http.StatusOK
	}
	writeJSON(w, status, submitResponse{Event: j.Snapshot(), Key: j.Key, Cached: j.Cached, Coalesced: coalesced})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	j, _, ok := s.submitFromRequest(w, r)
	if !ok {
		return
	}
	select {
	case <-j.Finished():
	case <-r.Context().Done():
		return
	}
	s.writeResult(w, j)
}

func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", r.PathValue("id")))
		return nil, false
	}
	noteJob(r, j.ID)
	return j, true
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFromPath(w, r); ok {
		writeJSON(w, http.StatusOK, submitResponse{Event: j.Snapshot(), Key: j.Key, Cached: j.Cached})
	}
}

func setCacheHeader(w http.ResponseWriter, j *Job) {
	if j.Cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
}

func (s *Server) writeResult(w http.ResponseWriter, j *Job) {
	ev := j.Snapshot()
	switch ev.State {
	case JobDone:
		e := j.Entry()
		setCacheHeader(w, j)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(e.Body)
	case JobFailed:
		writeError(w, http.StatusInternalServerError, ev.Error)
	case JobCanceled:
		writeError(w, http.StatusGone, "job canceled")
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, fmt.Sprintf("job %s is %s (%d/%d cells)", ev.ID, ev.State, ev.Done, ev.Total))
	}
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFromPath(w, r); ok {
		s.writeResult(w, j)
	}
}

func (s *Server) handleJobArtifact(pick func(*Entry) []byte) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.jobFromPath(w, r)
		if !ok {
			return
		}
		e := j.Entry()
		if e == nil {
			writeError(w, http.StatusConflict, "job has no result yet")
			return
		}
		b := pick(e)
		if len(b) == 0 {
			writeError(w, http.StatusNotFound, "no artifact for this spec (submit with \"trace\": true)")
			return
		}
		setCacheHeader(w, j)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(b)
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	if !j.Cancel() {
		writeError(w, http.StatusConflict, fmt.Sprintf("job is already %s", j.Snapshot().State))
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// handleJobEvents streams the job's progress as server-sent events — one
// `event: <state>` + JSON data frame per transition — closing after the
// terminal event.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	ch, unsub := j.Subscribe()
	defer unsub()
	emit := func(ev Event) {
		data, _ := json.Marshal(ev)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.State, data)
		if canFlush {
			flusher.Flush()
		}
	}
	for {
		select {
		case ev := <-ch:
			emit(ev)
			if ev.State == JobDone || ev.State == JobFailed || ev.State == JobCanceled {
				return
			}
		case <-j.Finished():
			// Drain anything already queued, then emit the terminal state.
			for {
				select {
				case ev := <-ch:
					if ev.State == JobDone || ev.State == JobFailed || ev.State == JobCanceled {
						emit(ev)
						return
					}
					emit(ev)
				default:
					emit(j.Snapshot())
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	hits, misses := s.cache.Stats()
	s.mu.Lock()
	jobs := len(s.jobs)
	activeJobs := len(s.active)
	s.mu.Unlock()
	var warmResident int
	var warmHits, warmMisses int64
	if s.warm != nil {
		warmResident, warmHits, warmMisses = s.warm.stats()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"warm_worlds":   warmResident,
		"warm_hits":     warmHits,
		"warm_misses":   warmMisses,
		"jobs":          jobs,
		"active":        activeJobs,
		"queue_len":     len(s.queue),
		"queue_depth":   s.cfg.QueueDepth,
		"workers":       s.cfg.Workers,
		"cache_entries": s.cache.Len(),
		"cache_hits":    hits,
		"cache_misses":  misses,
		"runs":          s.runs.Load(),
		"rejected":      s.rejected.Load(),
	})
}
