package serve

import (
	"context"
	"sync"
	"time"

	"nemesis/internal/experiments"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Event is one progress notification, also the SSE payload. Done/Total
// count the job's top-level sweep cells; events are cumulative, so a
// dropped intermediate event never loses information.
type Event struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Done  int      `json:"done"`
	Total int      `json:"total"`
	Error string   `json:"error,omitempty"`
}

// Job is one submitted spec working through the queue. All mutable state
// sits behind mu; the immutable identity fields are set at creation.
type Job struct {
	ID   string
	Key  string
	Spec experiments.Spec
	// Cached marks a job answered from the result cache with no simulation.
	Cached bool

	mu       sync.Mutex
	state    JobState
	done     int
	total    int
	errMsg   string
	entry    *Entry
	subs     map[chan Event]struct{}
	cancel   context.CancelFunc
	started  time.Time     // wall clock at queued → running, zero before
	finished chan struct{} // closed on done/failed/canceled
}

func newJob(id, key string, spec experiments.Spec) *Job {
	return &Job{
		ID:       id,
		Key:      key,
		Spec:     spec,
		state:    JobQueued,
		subs:     make(map[chan Event]struct{}),
		finished: make(chan struct{}),
	}
}

// Snapshot returns the job's current event view.
func (j *Job) Snapshot() Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.eventLocked()
}

func (j *Job) eventLocked() Event {
	return Event{ID: j.ID, State: j.state, Done: j.done, Total: j.total, Error: j.errMsg}
}

// Entry returns the finished result entry, or nil before completion.
func (j *Job) Entry() *Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.entry
}

// Finished is closed once the job reaches a terminal state.
func (j *Job) Finished() <-chan struct{} { return j.finished }

// Subscribe registers a progress listener. The current snapshot is
// delivered first, so late subscribers see the latest state immediately.
// Intermediate events may be dropped under backpressure (they are
// cumulative); the terminal transition is always observable via Finished.
func (j *Job) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 16)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	ch <- j.eventLocked()
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

func (j *Job) notifyLocked() {
	ev := j.eventLocked()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop, the next event carries newer counts
		}
	}
}

// progress records a per-cell completion from the sweep runner.
func (j *Job) progress(done, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobRunning {
		return
	}
	// Progress callbacks race across worker goroutines; keep the max.
	if done > j.done {
		j.done = done
	}
	j.total = total
	j.notifyLocked()
}

// start moves queued → running and installs the run's cancel hook. It
// returns false if the job was cancelled while queued.
func (j *Job) start(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	j.cancel = cancel
	j.started = time.Now()
	j.notifyLocked()
	return true
}

// Started returns the wall-clock instant the job began running (zero while
// still queued). The /metrics plane derives cell-completion rates from it.
func (j *Job) Started() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.started
}

// complete finishes the job with its result entry.
func (j *Job) complete(e *Entry) {
	j.finish(JobDone, "", e)
}

// fail finishes the job with an error message.
func (j *Job) fail(msg string) {
	j.finish(JobFailed, msg, nil)
}

func (j *Job) finish(state JobState, msg string, e *Entry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == JobDone || j.state == JobFailed || j.state == JobCanceled {
		return
	}
	j.state = state
	j.errMsg = msg
	j.entry = e
	if state == JobDone && j.total > 0 {
		j.done = j.total
	}
	j.notifyLocked()
	close(j.finished)
}

// Cancel requests cancellation: a queued job terminates immediately, a
// running job's context is cancelled and the worker records the terminal
// state when the in-flight cell finishes. Returns false on jobs already
// terminal.
func (j *Job) Cancel() bool {
	j.mu.Lock()
	cancel := j.cancel
	state := j.state
	j.mu.Unlock()
	switch state {
	case JobQueued:
		j.finish(JobCanceled, "canceled while queued", nil)
		return true
	case JobRunning:
		if cancel != nil {
			cancel()
		}
		return true
	default:
		return false
	}
}

// markCanceled records the terminal canceled state (used by the worker once
// a cancelled run unwinds).
func (j *Job) markCanceled(msg string) {
	j.finish(JobCanceled, msg, nil)
}
