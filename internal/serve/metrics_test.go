package serve

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"nemesis/internal/experiments"
)

// lockedBuf collects slog output written concurrently by request and worker
// goroutines.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.e+E-]+|NaN|[+-]Inf)$`)

// parseProm checks the body is well-formed text exposition — every sample
// line parses and belongs to a family announced by HELP + TYPE — and
// returns the set of family names and the full sample lines.
func parseProm(t *testing.T, body string) (families map[string]bool, samples []string) {
	t.Helper()
	families = map[string]bool{}
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			families[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			typed[f[2]] = true
			if f[3] != "gauge" && f[3] != "counter" {
				t.Errorf("bad TYPE %q", line)
			}
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("unparseable sample line %q", line)
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		if !families[name] || !typed[name] {
			t.Errorf("sample %q precedes or lacks its HELP/TYPE", line)
		}
		samples = append(samples, line)
	}
	return families, samples
}

// TestMetricsEndpoint runs one real job to completion and checks /metrics
// serves parseable exposition covering the jobs, queue, cache and warm
// families, and that the slog plane logged the request keyed by job ID.
func TestMetricsEndpoint(t *testing.T) {
	logs := &lockedBuf{}
	s := New(Config{Workers: 1, Logger: slog.New(slog.NewTextHandler(logs, nil))})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	readBody(t, postSpec(t, ts, "/run", cheapSpec(3)))

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content-type = %q, want text/plain exposition", ct)
	}
	body := string(readBody(t, resp))
	families, _ := parseProm(t, body)
	for _, want := range []string{
		"nemesis_jobs", "nemesis_queue_len", "nemesis_queue_capacity",
		"nemesis_cache_entries", "nemesis_cache_hits_total", "nemesis_cache_misses_total",
		"nemesis_warm_worlds", "nemesis_warm_hits_total", "nemesis_warm_misses_total",
		"nemesis_runs_total", "nemesis_rejected_total", "nemesis_workers",
	} {
		if !families[want] {
			t.Errorf("family %q missing from /metrics:\n%s", want, body)
		}
	}
	for _, want := range []string{`nemesis_jobs{state="done"} 1`, "nemesis_runs_total 1"} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("missing sample %q in:\n%s", want, body)
		}
	}

	got := logs.String()
	for _, want := range []string{"msg=request", "path=/run", "job=j1", "msg=\"job running\"", "msg=\"job finished\""} {
		if !strings.Contains(got, want) {
			t.Errorf("log output missing %q:\n%s", want, got)
		}
	}
}

// TestMetricsLiveJob scrapes while a job is mid-sweep: the per-job cell
// series must be present for live jobs and absent once terminal.
func TestMetricsLiveJob(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	s := newServer(Config{Workers: 1}, func(ctx context.Context, spec experiments.Spec, workers int) (*experiments.Outcome, error) {
		close(started)
		<-release
		return &experiments.Outcome{Result: &experiments.Result{Spec: spec}}, nil
	})
	defer s.Close()

	j, _, err := s.Submit(cheapSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// The job is running; report mid-sweep progress the way the real runner
	// does through its context callback.
	j.progress(2, 5)

	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	parseProm(t, body)
	for _, want := range []string{
		fmt.Sprintf("nemesis_job_cells_done{job=%q} 2", j.ID),
		fmt.Sprintf("nemesis_job_cells_total{job=%q} 5", j.ID),
		`nemesis_jobs{state="running"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}

	close(release)
	<-j.Finished()
	buf.Reset()
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "nemesis_job_cells_done{") {
		t.Errorf("terminal job still exports cell series:\n%s", buf.String())
	}
}
