package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestServeLoad is the load-generator acceptance test: 1,000 concurrent
// mixed requests (20 distinct specs × 50 repeats) against the real
// simulation runner. Every request must succeed, each distinct spec must
// simulate exactly once (the rest served by coalescing or the cache), all
// bodies for a spec must be byte-identical, and the server must not leak
// goroutines once drained. Run under -race in CI.
func TestServeLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	before := runtime.NumGoroutine()

	s := New(Config{Workers: 4, QueueDepth: 1100, CacheEntries: 64})
	ts := httptest.NewServer(s.Handler())
	client := ts.Client()
	transport := &http.Transport{MaxIdleConnsPerHost: 128}
	client.Transport = transport

	const (
		distinct = 20
		repeats  = 50
		total    = distinct * repeats
	)
	specBody := func(seed int) string {
		return fmt.Sprintf(`{"kind":"cluster","machines":1,"domains_per_machine":2,"servers":1,"measure":"50ms","seed":%d}`, seed)
	}

	var (
		mu     sync.Mutex
		bodies = make(map[int][][]byte, distinct) // seed → every response body
		errs   []error
	)
	var wg sync.WaitGroup
	wg.Add(total)
	for i := 0; i < total; i++ {
		go func(i int) {
			defer wg.Done()
			seed := i%distinct + 1
			resp, err := client.Post(ts.URL+"/run", "application/json", bytes.NewReader([]byte(specBody(seed))))
			if err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
				return
			}
			var buf bytes.Buffer
			_, rerr := buf.ReadFrom(resp.Body)
			resp.Body.Close()
			if rerr != nil || resp.StatusCode != http.StatusOK {
				mu.Lock()
				errs = append(errs, fmt.Errorf("seed %d: status %d read err %v", seed, resp.StatusCode, rerr))
				mu.Unlock()
				return
			}
			mu.Lock()
			bodies[seed] = append(bodies[seed], buf.Bytes())
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	for _, err := range errs {
		t.Error(err)
	}
	if len(errs) > 0 {
		t.Fatalf("%d of %d requests failed; queue depth %d should drop none", len(errs), total, 1100)
	}
	got := 0
	for seed, bs := range bodies {
		got += len(bs)
		for _, b := range bs[1:] {
			if !bytes.Equal(bs[0], b) {
				t.Fatalf("seed %d: responses are not byte-identical", seed)
			}
		}
	}
	if got != total {
		t.Errorf("collected %d bodies, want %d", got, total)
	}
	if runs := s.Runs(); runs != distinct {
		t.Errorf("runs = %d, want %d (one simulation per distinct spec)", runs, distinct)
	}
	hits, misses := s.cache.Stats()
	t.Logf("load: %d requests, %d simulations, cache %d hits / %d misses", total, s.Runs(), hits, misses)
	if hits == 0 {
		t.Error("expected cache hits under repeated specs, saw none")
	}

	transport.CloseIdleConnections()
	ts.Close()
	s.Close()
	// Drained server must return to near the baseline goroutine count.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+10 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+10 {
		t.Errorf("goroutines after drain = %d, baseline %d: leak", n, before)
	}
}

// TestServeLoadDeterministicAcrossSweepWorkers pins that the fan-out width
// is an execution detail, not part of result identity: servers configured
// with different SweepWorkers return byte-identical bodies for the same
// spec.
func TestServeLoadDeterministicAcrossSweepWorkers(t *testing.T) {
	spec := `{"kind":"netswap","latencies":["200us","1ms"],"losses":[0,0.05],"measure":"100ms"}`
	var ref []byte
	for _, workers := range []int{1, 4} {
		s := New(Config{Workers: 2, SweepWorkers: workers})
		ts := httptest.NewServer(s.Handler())
		resp, err := ts.Client().Post(ts.URL+"/run", "application/json", bytes.NewReader([]byte(spec)))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("SweepWorkers=%d: status %d: %s", workers, resp.StatusCode, buf.Bytes())
		}
		ts.Close()
		s.Close()
		if ref == nil {
			ref = buf.Bytes()
		} else if !bytes.Equal(ref, buf.Bytes()) {
			t.Errorf("SweepWorkers=%d body differs from SweepWorkers=1", workers)
		}
	}
}
