package serve

import (
	"encoding/json"
	"testing"
	"time"

	"nemesis/internal/experiments"
)

func TestCanonicalJSONSortsKeys(t *testing.T) {
	got, err := CanonicalJSON(map[string]any{"zebra": 1, "alpha": []any{true, nil, "x"}, "mid": map[string]any{"b": 2, "a": 1}})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"alpha":[true,null,"x"],"mid":{"a":1,"b":2},"zebra":1}`
	if string(got) != want {
		t.Errorf("canonical = %s, want %s", got, want)
	}
}

func TestCanonicalJSONNumberFidelity(t *testing.T) {
	// Numbers must survive digit-for-digit: float64 round-tripping would
	// corrupt large int64 seeds.
	got, err := CanonicalJSON(map[string]any{"seed": int64(9007199254740993)})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"seed":9007199254740993}` {
		t.Errorf("canonical = %s (large int64 mangled)", got)
	}
}

// keyOf decodes raw JSON as a spec and returns its content hash.
func keyOf(t *testing.T, raw string) string {
	t.Helper()
	var s experiments.Spec
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		t.Fatal(err)
	}
	key, _, err := SpecKey(s)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func TestSpecKeyStableAcrossFieldOrder(t *testing.T) {
	a := keyOf(t, `{"kind":"cluster","machines":2,"domains_per_machine":50,"seed":3}`)
	b := keyOf(t, `{"seed":3,"domains_per_machine":50,"machines":2,"kind":"cluster"}`)
	if a != b {
		t.Errorf("field order changed the key: %s vs %s", a, b)
	}
}

func TestSpecKeyStableAcrossDefaults(t *testing.T) {
	// Explicitly spelling a default must hash like omitting it.
	a := keyOf(t, `{"kind":"figure","figure":7}`)
	b := keyOf(t, `{"kind":"figure","figure":7,"measure":"40s","seed":1}`)
	if a != b {
		t.Errorf("default-vs-explicit changed the key: %s vs %s", a, b)
	}
	// And a non-default value must NOT collide.
	c := keyOf(t, `{"kind":"figure","figure":7,"seed":2}`)
	if a == c {
		t.Error("different seeds share a key")
	}
}

func TestSpecKeyStableAcrossDurationFormats(t *testing.T) {
	a := keyOf(t, `{"kind":"suite","measure":"2s"}`)
	b := keyOf(t, `{"kind":"suite","measure":"2000ms"}`)
	c := keyOf(t, `{"kind":"suite","measure":2000000000}`)
	if a != b || b != c {
		t.Errorf("duration spellings hash apart: %s %s %s", a, b, c)
	}
}

func TestSpecKeyRejectsInvalid(t *testing.T) {
	if _, _, err := SpecKey(experiments.Spec{Kind: "warp"}); err == nil {
		t.Error("invalid spec produced a key")
	}
	if _, _, err := SpecKey(experiments.Spec{Kind: experiments.KindSuite, Measure: experiments.Duration(time.Hour)}); err == nil {
		t.Error("over-bound measure produced a key")
	}
}
