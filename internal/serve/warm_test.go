package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"nemesis/internal/experiments"
)

func figSpec(fig int, measure time.Duration) experiments.Spec {
	return experiments.Spec{
		Kind:    experiments.KindFigure,
		Figure:  fig,
		Measure: experiments.Duration(measure),
	}
}

func TestWarmPrefixKey(t *testing.T) {
	k1, ok := warmPrefixKey(figSpec(7, time.Second))
	if !ok || k1 == "" {
		t.Fatalf("fig7 spec not poolable")
	}
	k2, ok := warmPrefixKey(figSpec(7, 2*time.Second))
	if !ok || k2 != k1 {
		t.Errorf("measure window must not affect the warm-prefix key: %s vs %s", k1, k2)
	}
	k8, ok := warmPrefixKey(figSpec(8, time.Second))
	if !ok || k8 == k1 {
		t.Errorf("fig8 must hash to a different prefix than fig7")
	}
	traced := figSpec(7, time.Second)
	traced.Trace = true
	if _, ok := warmPrefixKey(traced); ok {
		t.Errorf("traced specs must not be poolable")
	}
	if _, ok := warmPrefixKey(cheapSpec(1)); ok {
		t.Errorf("cluster specs must not be poolable")
	}
}

// TestWarmPoolReuse submits two figure-7 jobs that differ only in their
// measured window: the second must fork the world the first one warmed
// (one miss, then one hit), and both bodies must be byte-identical to
// what the CLI path produces for the same spec — residency is a latency
// optimisation, never part of result identity.
func TestWarmPoolReuse(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if s.warm == nil {
		t.Fatal("production server should enable the warm pool by default")
	}

	for i, measure := range []time.Duration{time.Second, 2 * time.Second} {
		spec := figSpec(7, measure)
		out, err := experiments.RunSpec(context.Background(), spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := experiments.EncodeResult(out.Result)
		if err != nil {
			t.Fatal(err)
		}
		resp := postSpec(t, ts, "/run", spec)
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", i, resp.StatusCode, body)
		}
		if !bytes.Equal(want, body) {
			t.Errorf("run %d: pooled body differs from CLI body:\nCLI:\n%s\nAPI:\n%s", i, want, body)
		}
	}

	resident, hits, misses := s.warm.stats()
	if resident != 1 || hits != 1 || misses != 1 {
		t.Errorf("pool stats after two sibling jobs: resident=%d hits=%d misses=%d, want 1/1/1",
			resident, hits, misses)
	}

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.Unmarshal(readBody(t, resp), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["warm_worlds"].(float64) != 1 || stats["warm_hits"].(float64) != 1 {
		t.Errorf("stats endpoint: warm_worlds=%v warm_hits=%v warm_misses=%v",
			stats["warm_worlds"], stats["warm_hits"], stats["warm_misses"])
	}
}

// TestWarmPoolEviction: the pool is a bounded LRU; inserting past its
// capacity evicts the least recently used world.
func TestWarmPoolEviction(t *testing.T) {
	built := 0
	p := newWarmPool(1)
	build := func() (*experiments.PagingWarm, error) {
		built++
		opt := experiments.DefaultPagingOptions()
		opt.Measure = time.Second
		return experiments.WarmPaging(opt)
	}
	for _, key := range []string{"a", "b", "a"} {
		w, err := p.fork(key, build)
		if err != nil {
			t.Fatal(err)
		}
		w.Sys.Shutdown()
	}
	defer p.close()
	if built != 3 {
		t.Errorf("built %d worlds, want 3 (a evicted by b, rebuilt on reuse)", built)
	}
	resident, hits, misses := p.stats()
	if resident != 1 || hits != 0 || misses != 3 {
		t.Errorf("stats: resident=%d hits=%d misses=%d, want 1/0/3", resident, hits, misses)
	}
}
