package sfs

import (
	"errors"
	"fmt"
	"sort"
)

// Errors returned by the extent allocator.
var (
	ErrNoSpace = errors.New("sfs: no free extent large enough")
	ErrBadFree = errors.New("sfs: freeing blocks that are not allocated from this allocator")
	ErrBadSize = errors.New("sfs: non-positive allocation size")
)

// span is a contiguous free range [start, start+count).
type span struct {
	start, count int64
}

// extentAllocator hands out contiguous block ranges first-fit from a fixed
// region, coalescing on free. It backs SFS swap-file allocation.
type extentAllocator struct {
	base, size int64
	free       []span // sorted by start, non-adjacent, non-overlapping
}

// newExtentAllocator manages [base, base+size).
func newExtentAllocator(base, size int64) *extentAllocator {
	return &extentAllocator{base: base, size: size, free: []span{{base, size}}}
}

// FreeBlocks returns the total number of unallocated blocks.
func (a *extentAllocator) FreeBlocks() int64 {
	var total int64
	for _, s := range a.free {
		total += s.count
	}
	return total
}

// LargestFree returns the size of the largest free extent.
func (a *extentAllocator) LargestFree() int64 {
	var best int64
	for _, s := range a.free {
		if s.count > best {
			best = s.count
		}
	}
	return best
}

// Alloc returns the start of a free extent of exactly count blocks,
// first-fit.
func (a *extentAllocator) Alloc(count int64) (int64, error) {
	if count <= 0 {
		return 0, fmt.Errorf("%w: %d", ErrBadSize, count)
	}
	for i := range a.free {
		s := &a.free[i]
		if s.count < count {
			continue
		}
		start := s.start
		s.start += count
		s.count -= count
		if s.count == 0 {
			a.free = append(a.free[:i], a.free[i+1:]...)
		}
		return start, nil
	}
	return 0, fmt.Errorf("%w: want %d, largest %d", ErrNoSpace, count, a.LargestFree())
}

// Free returns [start, start+count) to the allocator, coalescing with
// neighbours. Freeing a range that overlaps existing free space or lies
// outside the managed region is an error.
func (a *extentAllocator) Free(start, count int64) error {
	if count <= 0 {
		return fmt.Errorf("%w: count %d", ErrBadFree, count)
	}
	if start < a.base || start+count > a.base+a.size {
		return fmt.Errorf("%w: [%d,+%d) outside [%d,+%d)", ErrBadFree, start, count, a.base, a.size)
	}
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].start >= start })
	// Overlap checks against neighbours.
	if i < len(a.free) && start+count > a.free[i].start {
		return fmt.Errorf("%w: overlaps free span at %d", ErrBadFree, a.free[i].start)
	}
	if i > 0 && a.free[i-1].start+a.free[i-1].count > start {
		return fmt.Errorf("%w: overlaps free span at %d", ErrBadFree, a.free[i-1].start)
	}
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = span{start, count}
	// Coalesce with successor, then predecessor.
	if i+1 < len(a.free) && a.free[i].start+a.free[i].count == a.free[i+1].start {
		a.free[i].count += a.free[i+1].count
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].start+a.free[i-1].count == a.free[i].start {
		a.free[i-1].count += a.free[i].count
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	return nil
}
