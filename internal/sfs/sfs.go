// Package sfs implements the Swap FileSystem: the control-path half of the
// paper's User-Safe Backing Store. The SFS owns a disk partition, allocates
// extents (contiguous block ranges) for use as swap files, and negotiates
// each client's Quality of Service parameters with the USD, which schedules
// the data path. Once a swap file exists, all data operations go straight
// from the client to the USD over the client's own IO channel — the SFS is
// off the data path entirely, so it cannot be a source of QoS crosstalk.
package sfs

import (
	"errors"
	"fmt"

	"nemesis/internal/atropos"
	"nemesis/internal/disk"
	"nemesis/internal/obs"
	"nemesis/internal/sim"
	"nemesis/internal/usd"
)

// Errors returned by the SFS control path.
var (
	ErrExists     = errors.New("sfs: swap file already exists")
	ErrNoSuchFile = errors.New("sfs: no such swap file")
	ErrBadRange   = errors.New("sfs: range outside swap file")
)

// SFS manages swap files within one disk partition.
type SFS struct {
	usd   *usd.USD
	part  usd.Extent
	alloc *extentAllocator
	files map[string]*SwapFile
}

// New creates an SFS managing the given partition of u's disk.
func New(u *usd.USD, partition usd.Extent) *SFS {
	return &SFS{
		usd:   u,
		part:  partition,
		alloc: newExtentAllocator(partition.Start, partition.Count),
		files: make(map[string]*SwapFile),
	}
}

// Partition returns the managed region.
func (s *SFS) Partition() usd.Extent { return s.part }

// FreeBlocks returns the unallocated capacity in blocks.
func (s *SFS) FreeBlocks() int64 { return s.alloc.FreeBlocks() }

// Lookup returns the named swap file, or nil.
func (s *SFS) Lookup(name string) *SwapFile { return s.files[name] }

// CreateSwapFile allocates an extent of sizeBytes (rounded up to whole
// blocks), admits the client to the USD under contract q with the given
// pipeline depth, and grants the client access to exactly its extent.
func (s *SFS) CreateSwapFile(name string, sizeBytes int64, q atropos.QoS, depth int) (*SwapFile, error) {
	if _, exists := s.files[name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	if sizeBytes <= 0 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadSize, sizeBytes)
	}
	blocks := (sizeBytes + disk.BlockSize - 1) / disk.BlockSize
	start, err := s.alloc.Alloc(blocks)
	if err != nil {
		return nil, err
	}
	ch, err := s.usd.Open(name, q, depth)
	if err != nil {
		s.alloc.Free(start, blocks)
		return nil, err
	}
	ext := usd.Extent{Start: start, Count: blocks}
	if err := s.usd.Grant(name, ext); err != nil {
		s.usd.Close(name)
		s.alloc.Free(start, blocks)
		return nil, err
	}
	f := &SwapFile{name: name, sfs: s, extent: ext, ch: ch}
	s.files[name] = f
	return f, nil
}

// OpenAlias admits a second USD client with its own QoS contract and grants
// it access to an existing swap file's extent. Stream-paging drivers use
// this to run a prefetch pipeline beside the demand-fault channel without
// the two streams' completions interleaving on one FIFO.
func (s *SFS) OpenAlias(f *SwapFile, name string, q atropos.QoS, depth int) (*usd.Channel, error) {
	ch, err := s.usd.Open(name, q, depth)
	if err != nil {
		return nil, err
	}
	if err := s.usd.Grant(name, f.extent); err != nil {
		s.usd.Close(name)
		return nil, err
	}
	return ch, nil
}

// DeleteSwapFile tears down the named swap file, closing its USD client and
// returning its extent to the allocator.
func (s *SFS) DeleteSwapFile(name string) error {
	f, ok := s.files[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchFile, name)
	}
	delete(s.files, name)
	if err := s.usd.Close(name); err != nil {
		return err
	}
	return s.alloc.Free(f.extent.Start, f.extent.Count)
}

// SwapFile is an extent of disk with an attached QoS-scheduled IO channel.
// Offsets are file-relative blocks; the swap file translates to absolute
// disk blocks, so a client cannot name blocks outside its extent even
// before the USD's own extent check.
type SwapFile struct {
	name   string
	sfs    *SFS
	extent usd.Extent
	ch     *usd.Channel
}

// Name returns the swap file's name (also its USD client name).
func (f *SwapFile) Name() string { return f.name }

// Blocks returns the file length in blocks.
func (f *SwapFile) Blocks() int64 { return f.extent.Count }

// Extent returns the absolute disk extent backing the file.
func (f *SwapFile) Extent() usd.Extent { return f.extent }

// Channel exposes the underlying IO channel for pipelined clients.
func (f *SwapFile) Channel() *usd.Channel { return f.ch }

func (f *SwapFile) checkRange(offset int64, count int) error {
	if count <= 0 || offset < 0 || offset+int64(count) > f.extent.Count {
		return fmt.Errorf("%w: [%d,+%d) of %d blocks", ErrBadRange, offset, count, f.extent.Count)
	}
	return nil
}

// Read fills buf with count blocks starting at file-relative block offset,
// blocking p until the USD completes the transaction.
func (f *SwapFile) Read(p *sim.Proc, offset int64, count int, buf []byte) error {
	return f.ReadSpanned(p, offset, count, buf, nil)
}

// ReadSpanned is Read, additionally stamping the transaction's phases onto
// sp (which may be nil): hop "usd.queue" covers submission to service
// start, "usd.read" the disk service itself, and "usd.complete" the
// completion delivery back to the faulting thread. The USD records exact
// service start/completion instants on the request, so the hops are split
// retroactively but stay contiguous.
func (f *SwapFile) ReadSpanned(p *sim.Proc, offset int64, count int, buf []byte, sp *obs.Span) error {
	if err := f.checkRange(offset, count); err != nil {
		return err
	}
	sp.BeginHop("usd.queue")
	req := &usd.Request{Op: disk.Read, Block: f.extent.Start + offset, Count: count, Data: buf}
	_, err := f.ch.Do(p, req)
	sp.SplitHop(req.Started(), "usd.read")
	sp.SplitHop(req.Completed(), "usd.complete")
	return err
}

// Write stores count blocks from buf at file-relative block offset.
func (f *SwapFile) Write(p *sim.Proc, offset int64, count int, buf []byte) error {
	return f.WriteSpanned(p, offset, count, buf, nil)
}

// WriteSpanned is Write with the same span stamping as ReadSpanned, using
// hop "usd.write" for the service phase.
func (f *SwapFile) WriteSpanned(p *sim.Proc, offset int64, count int, buf []byte, sp *obs.Span) error {
	if err := f.checkRange(offset, count); err != nil {
		return err
	}
	sp.BeginHop("usd.queue")
	req := &usd.Request{Op: disk.Write, Block: f.extent.Start + offset, Count: count, Data: buf}
	_, err := f.ch.Do(p, req)
	sp.SplitHop(req.Started(), "usd.write")
	sp.SplitHop(req.Completed(), "usd.complete")
	return err
}
