package sfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/disk"
	"nemesis/internal/sim"
	"nemesis/internal/usd"
)

func ms(n int64) time.Duration { return time.Duration(n) * time.Millisecond }

func newSFS() (*sim.Simulator, *usd.USD, *SFS) {
	s := sim.New(1)
	u := usd.New(s, disk.New(s, disk.VP3221()))
	fs := New(u, usd.Extent{Start: 100000, Count: 200000})
	return s, u, fs
}

func q() atropos.QoS { return atropos.QoS{P: ms(250), S: ms(50), L: ms(10)} }

func TestExtentAllocFirstFit(t *testing.T) {
	a := newExtentAllocator(0, 1000)
	s1, err := a.Alloc(100)
	if err != nil || s1 != 0 {
		t.Fatalf("alloc = %d, %v", s1, err)
	}
	s2, _ := a.Alloc(200)
	if s2 != 100 {
		t.Fatalf("second alloc = %d", s2)
	}
	if err := a.Free(0, 100); err != nil {
		t.Fatal(err)
	}
	// First fit reuses the hole at 0.
	s3, _ := a.Alloc(50)
	if s3 != 0 {
		t.Fatalf("third alloc = %d, want 0", s3)
	}
	if a.FreeBlocks() != 1000-200-50 {
		t.Fatalf("FreeBlocks = %d", a.FreeBlocks())
	}
}

func TestExtentAllocExhaustion(t *testing.T) {
	a := newExtentAllocator(0, 100)
	if _, err := a.Alloc(101); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v", err)
	}
	if _, err := a.Alloc(0); !errors.Is(err, ErrBadSize) {
		t.Fatalf("err = %v", err)
	}
	a.Alloc(60)
	a.Alloc(40)
	if _, err := a.Alloc(1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v", err)
	}
}

func TestExtentFreeCoalesces(t *testing.T) {
	a := newExtentAllocator(0, 300)
	a.Alloc(100) // [0,100)
	a.Alloc(100) // [100,200)
	a.Alloc(100) // [200,300)
	a.Free(0, 100)
	a.Free(200, 100)
	a.Free(100, 100) // middle: must merge all three
	if a.LargestFree() != 300 {
		t.Fatalf("LargestFree = %d, want 300 after coalesce", a.LargestFree())
	}
}

func TestExtentFreeValidation(t *testing.T) {
	a := newExtentAllocator(100, 100)
	if err := a.Free(50, 10); !errors.Is(err, ErrBadFree) {
		t.Fatalf("out-of-region free: %v", err)
	}
	if err := a.Free(150, 10); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free: %v", err) // region starts fully free
	}
	if err := a.Free(100, 0); !errors.Is(err, ErrBadFree) {
		t.Fatalf("zero free: %v", err)
	}
	x, _ := a.Alloc(100)
	if err := a.Free(x, 100); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(x+20, 10); !errors.Is(err, ErrBadFree) {
		t.Fatalf("overlapping free: %v", err)
	}
}

// Property: random alloc/free sequences never corrupt the allocator —
// allocations never overlap, and freeing everything restores full capacity.
func TestExtentAllocatorProperty(t *testing.T) {
	type alloc struct{ start, count int64 }
	f := func(sizes []uint8) bool {
		a := newExtentAllocator(0, 4096)
		var live []alloc
		for i, sz := range sizes {
			n := int64(sz)%64 + 1
			if i%3 == 2 && len(live) > 0 {
				v := live[0]
				live = live[1:]
				if a.Free(v.start, v.count) != nil {
					return false
				}
				continue
			}
			start, err := a.Alloc(n)
			if err != nil {
				continue
			}
			for _, o := range live {
				if start < o.start+o.count && o.start < start+n {
					return false // overlap
				}
			}
			live = append(live, alloc{start, n})
		}
		for _, v := range live {
			if a.Free(v.start, v.count) != nil {
				return false
			}
		}
		return a.FreeBlocks() == 4096 && a.LargestFree() == 4096
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCreateSwapFile(t *testing.T) {
	_, u, fs := newSFS()
	f, err := fs.CreateSwapFile("swap0", 16<<20, q(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Blocks() != (16<<20)/disk.BlockSize {
		t.Fatalf("Blocks = %d", f.Blocks())
	}
	ext := f.Extent()
	if ext.Start < fs.Partition().Start || ext.Start+ext.Count > fs.Partition().Start+fs.Partition().Count {
		t.Fatalf("extent %v outside partition %v", ext, fs.Partition())
	}
	if fs.Lookup("swap0") != f || fs.Lookup("nope") != nil {
		t.Fatal("Lookup broken")
	}
	if u.Contracted() != 0.2 {
		t.Fatalf("Contracted = %v", u.Contracted())
	}
	if _, err := fs.CreateSwapFile("swap0", 1<<20, q(), 1); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

// TestSFSSentinelErrors: control-path failures report typed sentinels.
func TestSFSSentinelErrors(t *testing.T) {
	_, _, fs := newSFS()
	f, err := fs.CreateSwapFile("f", 1<<20, q(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.CreateSwapFile("f", 1<<20, q(), 1); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create err = %v", err)
	}
	if err := fs.DeleteSwapFile("missing"); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("delete err = %v", err)
	}
	for _, bad := range [][2]int64{{-1, 1}, {0, 0}, {f.Blocks(), 1}, {0, f.Blocks() + 1}} {
		if err := f.checkRange(bad[0], int(bad[1])); !errors.Is(err, ErrBadRange) {
			t.Fatalf("checkRange(%d,%d) err = %v", bad[0], bad[1], err)
		}
	}
	if err := f.checkRange(0, int(f.Blocks())); err != nil {
		t.Fatalf("full-range check failed: %v", err)
	}
}

func TestCreateSwapFileRollsBackOnUSDFailure(t *testing.T) {
	_, _, fs := newSFS()
	free := fs.FreeBlocks()
	// Contract exceeding the whole disk is rejected by the USD; the
	// extent must be returned.
	bad := atropos.QoS{P: ms(100), S: ms(200)}
	if _, err := fs.CreateSwapFile("f", 1<<20, bad, 1); err == nil {
		t.Fatal("bad QoS accepted")
	}
	if fs.FreeBlocks() != free {
		t.Fatalf("extent leaked: %d != %d", fs.FreeBlocks(), free)
	}
}

func TestCreateSwapFileNoSpace(t *testing.T) {
	_, _, fs := newSFS()
	if _, err := fs.CreateSwapFile("huge", 200001*disk.BlockSize, q(), 1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v", err)
	}
	if _, err := fs.CreateSwapFile("empty", 0, q(), 1); !errors.Is(err, ErrBadSize) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeleteSwapFile(t *testing.T) {
	_, u, fs := newSFS()
	free := fs.FreeBlocks()
	_, err := fs.CreateSwapFile("f", 1<<20, q(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.DeleteSwapFile("f"); err != nil {
		t.Fatal(err)
	}
	if fs.FreeBlocks() != free {
		t.Fatal("extent not returned")
	}
	if u.Contracted() != 0 {
		t.Fatal("QoS contract not released")
	}
	if err := fs.DeleteSwapFile("f"); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestSwapFileIO(t *testing.T) {
	s, _, fs := newSFS()
	f, err := fs.CreateSwapFile("swap", 1<<20, q(), 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("app", func(p *sim.Proc) {
		w := bytes.Repeat([]byte{0xC3}, 16*disk.BlockSize)
		if err := f.Write(p, 32, 16, w); err != nil {
			t.Error(err)
			return
		}
		r := make([]byte, 16*disk.BlockSize)
		if err := f.Read(p, 32, 16, r); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(w, r) {
			t.Error("swap file round trip corrupted")
		}
		// Out-of-file access must fail locally.
		if err := f.Read(p, f.Blocks()-8, 16, r); err == nil {
			t.Error("read past end of swap file succeeded")
		}
		if err := f.Write(p, -1, 16, w); err == nil {
			t.Error("negative offset accepted")
		}
	})
	s.RunFor(time.Second)
}

// TestSwapFilesIsolated: one swap file's channel cannot reach another's
// extent even via the raw channel (USD extent protection).
func TestSwapFilesIsolated(t *testing.T) {
	s, _, fs := newSFS()
	f1, _ := fs.CreateSwapFile("one", 1<<20, q(), 1)
	f2, _ := fs.CreateSwapFile("two", 1<<20, q(), 1)
	s.Spawn("attacker", func(p *sim.Proc) {
		// Use f1's raw channel to address f2's extent directly.
		_, err := f1.Channel().Do(p, &usd.Request{
			Op: disk.Read, Block: f2.Extent().Start, Count: 16,
		})
		if !errors.Is(err, usd.ErrNoSuchExtent) {
			t.Errorf("cross-extent access: err = %v", err)
		}
	})
	s.RunFor(time.Second)
}

func TestOpenAlias(t *testing.T) {
	s, u, fs := newSFS()
	f, err := fs.CreateSwapFile("main", 1<<20, q(), 1)
	if err != nil {
		t.Fatal(err)
	}
	alias, err := fs.OpenAlias(f, "main-pf", q(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if alias.Depth() != 4 {
		t.Fatalf("depth = %d", alias.Depth())
	}
	// Both channels reach the same extent; data written through one is
	// visible through the other.
	s.Spawn("io", func(p *sim.Proc) {
		w := bytes.Repeat([]byte{0x77}, 16*disk.BlockSize)
		if err := f.Write(p, 0, 16, w); err != nil {
			t.Error(err)
			return
		}
		r, err := alias.Do(p, &usd.Request{Op: disk.Read, Block: f.Extent().Start, Count: 16})
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(r.Data, w) {
			t.Error("alias read mismatch")
		}
		// The alias cannot reach outside the file's extent.
		if _, err := alias.Do(p, &usd.Request{Op: disk.Read, Block: f.Extent().Start + f.Extent().Count, Count: 16}); err == nil {
			t.Error("alias escaped the extent")
		}
	})
	s.RunFor(2 * time.Second)
	// The alias holds its own QoS contract.
	if u.Contracted() != 0.4 {
		t.Fatalf("Contracted = %v", u.Contracted())
	}
	// Alias on top of a bad contract is rejected and leaves no residue.
	if _, err := fs.OpenAlias(f, "main-pf2", atropos.QoS{P: ms(100), S: ms(300)}, 1); err == nil {
		t.Fatal("bad alias accepted")
	}
	if _, err := fs.OpenAlias(f, "main-pf2", q(), 1); err != nil {
		t.Fatalf("name not released after failed alias: %v", err)
	}
}
