package sfs

import (
	"fmt"

	"nemesis/internal/usd"
)

// Fork returns a deep copy of the SFS bound to the forked USD. chans is the
// channel identity map USD.Fork returned: each swap file re-points its IO
// channel at the forked twin. The returned map translates parent swap-file
// pointers for holders such as stretch-driver backings.
func (s *SFS) Fork(nu *usd.USD, chans map[*usd.Channel]*usd.Channel) (*SFS, map[*SwapFile]*SwapFile, error) {
	ns := &SFS{
		usd:  nu,
		part: s.part,
		alloc: &extentAllocator{
			base: s.alloc.base,
			size: s.alloc.size,
			free: append([]span(nil), s.alloc.free...),
		},
		files: make(map[string]*SwapFile, len(s.files)),
	}
	m := make(map[*SwapFile]*SwapFile, len(s.files))
	for name, f := range s.files {
		nch := chans[f.ch]
		if nch == nil {
			return nil, nil, fmt.Errorf("sfs: no forked channel for swap file %q", name)
		}
		nf := &SwapFile{name: f.name, sfs: ns, extent: f.extent, ch: nch}
		ns.files[name] = nf
		m[f] = nf
	}
	return ns, m, nil
}
