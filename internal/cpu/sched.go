package cpu

import (
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/obs"
	"nemesis/internal/sim"
)

// Scheduler multiplexes one processor among domains using the same Atropos
// core as the USD. Domains consume CPU through DomainCPU.Compute, which
// serialises execution: while one domain computes, others wait. Slack time
// is handed round-robin to x=true clients, so a lightly loaded machine runs
// everything and contracts only bind under contention.
type Scheduler struct {
	sim   *sim.Simulator
	core  *atropos.Core
	Costs Costs

	// Attr, when set before domains are admitted, feeds the sim-time
	// attribution profiler with wait/run/yield transitions. Nil costs
	// nothing: the per-domain handle's methods are no-ops on nil.
	Attr *obs.Attribution

	busy    bool
	waiters map[string]*waiter
	pending int // waiting threads across all domains
	order   []string
	timer   sim.Timer

	// Pre-bound callback: schedule runs on every quantum of every computing
	// domain, and a method value created at the call site would allocate
	// each time.
	scheduleFn func()
}

type waiter struct {
	cond    *sim.Cond
	pending int
}

// DomainCPU is one domain's handle on the processor.
type DomainCPU struct {
	s    *Scheduler
	ac   *atropos.Client
	name string
	w    *waiter         // pre-resolved, avoids a map lookup per quantum
	attr *obs.DomainAttr // attribution handle, nil without telemetry
}

// NewScheduler creates a CPU scheduler on s.
func NewScheduler(s *sim.Simulator) *Scheduler {
	sc := &Scheduler{
		sim:     s,
		core:    atropos.NewCore(1.0),
		Costs:   DefaultCosts(),
		waiters: make(map[string]*waiter),
	}
	sc.scheduleFn = sc.schedule
	return sc
}

// Admit registers a domain with CPU contract q.
func (s *Scheduler) Admit(name string, q atropos.QoS) (*DomainCPU, error) {
	ac, err := s.core.Admit(name, q, s.sim.Now())
	if err != nil {
		return nil, err
	}
	w := &waiter{cond: sim.NewCond(s.sim)}
	s.waiters[name] = w
	s.order = append(s.order, name)
	d := &DomainCPU{s: s, ac: ac, name: name, w: w}
	if s.Attr != nil {
		d.attr = s.Attr.Track(name)
	}
	return d, nil
}

// Remove deregisters a domain.
func (s *Scheduler) Remove(name string) error {
	if err := s.core.Remove(name); err != nil {
		return err
	}
	if w := s.waiters[name]; w != nil {
		s.pending -= w.pending
	}
	delete(s.waiters, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return nil
}

// Contracted returns the admitted CPU share.
func (s *Scheduler) Contracted() float64 { return s.core.Contracted() }

// Name returns the domain's scheduler name.
func (d *DomainCPU) Name() string { return d.name }

// Charged returns total CPU time charged to the domain.
func (d *DomainCPU) Charged() time.Duration { return d.ac.Charged() }

// schedule grants the CPU to the best waiter, if the CPU is idle. Called
// whenever scheduler state changes. Work availability is mirrored into the
// core's ready set by acquire, so the picks run off the readiness index
// instead of scanning every admitted client with a has-waiter predicate.
func (s *Scheduler) schedule() {
	if s.busy {
		return
	}
	s.core.Refresh(s.sim.Now())
	pick := s.core.PickEDFReady()
	if pick == nil {
		// Slack: hand idle CPU to any x=true waiter round-robin.
		pick = s.core.PickSlackReady()
	}
	if pick == nil {
		// Nothing runnable now; if threads are waiting on exhausted
		// slices, wake up at the next period boundary.
		if s.pending > 0 {
			if b, ok := s.core.NextBoundary(); ok {
				s.timer.Stop()
				s.timer = s.sim.At(b, s.scheduleFn)
			}
		}
		return
	}
	s.busy = true
	s.waiters[pick.Name()].cond.Signal()
}

// acquire blocks p until the CPU is granted to domain d.
func (s *Scheduler) acquire(p *sim.Proc, d *DomainCPU) {
	w := d.w
	w.pending++
	s.pending++
	if w.pending == 1 {
		s.core.SetReady(d.ac, true)
	}
	d.attr.CPUWait()
	s.sim.At(s.sim.Now(), s.scheduleFn)
	w.cond.Wait(p)
	w.pending--
	s.pending--
	if w.pending == 0 {
		s.core.SetReady(d.ac, false)
	}
	d.attr.CPURun()
}

// release charges the consumed quantum and reschedules.
func (s *Scheduler) release(d *DomainCPU, used time.Duration) {
	d.attr.CPUYield()
	s.core.Charge(d.ac, used)
	s.busy = false
	s.sim.At(s.sim.Now(), s.scheduleFn)
}

// quantum bounds a single uninterrupted hold of the CPU, so a long
// computation cannot block higher-urgency domains past one quantum.
const quantum = time.Millisecond

// Compute consumes dur of CPU time on behalf of the domain, blocking p for
// at least dur of simulated time (longer under contention). Zero and
// negative durations return immediately.
func (d *DomainCPU) Compute(p *sim.Proc, dur time.Duration) {
	for dur > 0 {
		d.s.acquire(p, d)
		q := dur
		if q > quantum {
			q = quantum
		}
		p.Sleep(q)
		d.s.release(d, q)
		dur -= q
	}
}
