// Package cpu provides the simulated processor: a cost table calibrated
// from the paper's own measurements on the 266 MHz Alpha 21164 (Table 1 and
// §7.1's breakdown of the trap path), and an Atropos-scheduled CPU that
// serialises domain execution so compute time is physically meaningful.
package cpu

import "time"

// Costs is the per-primitive cost model. The microbenchmark results are
// *produced* by running the real code paths and charging these constants
// per primitive executed — e.g. (un)protecting 100 pages via the page table
// performs 100 PTE updates, via the protection domain a single rights
// change.
type Costs struct {
	// EventSend is a kernel event transmission: "a few sanity checks
	// followed by the increment of a 64-bit value" (<50 ns).
	EventSend time.Duration
	// ContextSave is the full context save on a fault (~750 ns).
	ContextSave time.Duration
	// Activate is dispatching the faulting domain (<200 ns).
	Activate time.Duration
	// UserFaultPath covers the unoptimised user-level notification
	// handler, stretch-driver invocation and thread scheduler (~3 µs,
	// which the paper notes "could clearly be improved").
	UserFaultPath time.Duration
	// PTLookup is a page-table entry lookup plus a bit test (the dirty
	// benchmark: 0.15 µs with the linear table).
	PTLookup time.Duration
	// PTEUpdate is modifying one PTE's protection bits, including the
	// per-page lookup (prot1 via page tables: 0.42 µs; Nemesis has no
	// optimised range path so prot100 costs ~100 of these minus the
	// fixed syscall part).
	PTEUpdate time.Duration
	// SyscallOverhead is the fixed cost of entering the low-level
	// translation-system calls.
	SyscallOverhead time.Duration
	// PDChange is a protection-domain rights update (prot via protection
	// domain: ~0.40 µs total with syscall overhead; idempotent changes
	// detected at 0.15 µs).
	PDChange time.Duration
	// IdempotentProt is the fast path when the protection scheme detects
	// an idempotent change.
	IdempotentProt time.Duration
	// MapUnmap is one low-level map or unmap operation (comparable to a
	// PTE update plus RamTab validation).
	MapUnmap time.Duration
	// TLBFill is a software TLB refill on a miss.
	TLBFill time.Duration
	// GPTNodeVisit is the marginal cost of each additional node visited
	// when walking a guarded page table (beyond the first access, which
	// costs a full PTLookup including the bit test). Calibrated so the
	// guarded table's dirty lookup lands near the paper's "about three
	// times slower".
	GPTNodeVisit time.Duration
	// ComputePerByte is the application's per-byte processing cost in
	// the paging experiments ("each byte is read/written but no other
	// substantial work is performed"): a simple load/test loop on the
	// 266 MHz 21164.
	ComputePerByte time.Duration
	// IDCRoundTrip is an inter-domain communication call (worker-thread
	// path to the frames allocator or USD).
	IDCRoundTrip time.Duration
}

// DefaultCosts returns the Nemesis/EB164 calibration.
func DefaultCosts() Costs {
	return Costs{
		EventSend:       50 * time.Nanosecond,
		ContextSave:     750 * time.Nanosecond,
		Activate:        200 * time.Nanosecond,
		UserFaultPath:   3200 * time.Nanosecond,
		PTLookup:        150 * time.Nanosecond,
		PTEUpdate:       105 * time.Nanosecond,
		SyscallOverhead: 315 * time.Nanosecond,
		PDChange:        85 * time.Nanosecond,
		IdempotentProt:  150 * time.Nanosecond,
		MapUnmap:        2500 * time.Nanosecond,
		TLBFill:         120 * time.Nanosecond,
		GPTNodeVisit:    100 * time.Nanosecond,
		ComputePerByte:  15 * time.Nanosecond,
		IDCRoundTrip:    8 * time.Microsecond,
	}
}

// TrapCost is the full kernel part of a user-space fault dispatch.
func (c Costs) TrapCost() time.Duration {
	return c.EventSend + c.ContextSave + c.Activate
}

// FaultRoundTrip is trap plus the user-level path — the Table 1 "trap"
// benchmark.
func (c Costs) FaultRoundTrip() time.Duration {
	return c.TrapCost() + c.UserFaultPath
}
