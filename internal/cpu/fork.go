package cpu

import (
	"fmt"

	"nemesis/internal/atropos"
	"nemesis/internal/obs"
	"nemesis/internal/sim"
)

// Fork returns a deep copy of the scheduler on the forked simulator ns, with
// attr as the forked attribution sink (nil without telemetry). It also
// returns the Atropos client identity map (parent client → forked client),
// which AdoptHandle uses to re-point per-domain CPU handles, and the sequence
// numbers of any re-armed boundary timer so the snapshot orchestrator can
// account for every pending event.
//
// The fork point must be a quiesced instant: no thread may hold or be waiting
// for the CPU. (A boundary wake-up timer may still be pending — schedule()
// never cancels one once runnable work appears — and is re-armed verbatim.)
func (s *Scheduler) Fork(ns *sim.Simulator, attr *obs.Attribution) (*Scheduler, map[*atropos.Client]*atropos.Client, []uint64, error) {
	if s.busy {
		return nil, nil, nil, fmt.Errorf("cpu: cannot fork while a domain holds the CPU")
	}
	if s.pending != 0 {
		return nil, nil, nil, fmt.Errorf("cpu: cannot fork with %d threads waiting for the CPU", s.pending)
	}
	core, m := s.core.Fork()
	nsch := &Scheduler{
		sim:     ns,
		core:    core,
		Costs:   s.Costs,
		Attr:    attr,
		waiters: make(map[string]*waiter, len(s.waiters)),
		order:   append([]string(nil), s.order...),
	}
	nsch.scheduleFn = nsch.schedule
	for name := range s.waiters {
		nsch.waiters[name] = &waiter{cond: sim.NewCond(ns)}
	}
	var claimed []uint64
	if at, seq, ok := s.timer.When(); ok {
		nsch.timer = ns.RestoreAt(at, seq, nsch.scheduleFn)
		claimed = append(claimed, seq)
	}
	return nsch, m, claimed, nil
}

// AdoptHandle returns the forked twin of a parent-side DomainCPU: the same
// name and admission, bound to the forked scheduler's waiter and the forked
// Atropos client from the map Fork returned. The attribution handle is
// re-derived from the forked sink (Track is get-or-create, so it attaches to
// the copied accounting rather than opening a fresh domain).
func (s *Scheduler) AdoptHandle(pd *DomainCPU, m map[*atropos.Client]*atropos.Client) (*DomainCPU, error) {
	w := s.waiters[pd.name]
	if w == nil {
		return nil, fmt.Errorf("cpu: AdoptHandle: domain %q not admitted in fork", pd.name)
	}
	ac := m[pd.ac]
	if ac == nil {
		return nil, fmt.Errorf("cpu: AdoptHandle: no forked Atropos client for %q", pd.name)
	}
	d := &DomainCPU{s: s, ac: ac, name: pd.name, w: w}
	if s.Attr != nil {
		d.attr = s.Attr.Track(pd.name)
	}
	return d, nil
}
