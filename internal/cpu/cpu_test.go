package cpu

import (
	"testing"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/sim"
)

func ms(n int64) time.Duration { return time.Duration(n) * time.Millisecond }

func TestCostsSanity(t *testing.T) {
	c := DefaultCosts()
	if c.TrapCost() != c.EventSend+c.ContextSave+c.Activate {
		t.Fatal("TrapCost composition")
	}
	// Paper: trap ~4.2us total, ~1us kernel + ~3.2us user.
	if rt := c.FaultRoundTrip(); rt < 4*time.Microsecond || rt > 5*time.Microsecond {
		t.Fatalf("FaultRoundTrip = %v, want ~4.2us", rt)
	}
	// dirty < prot1(PD) < prot1(PT).
	if !(c.PTLookup < c.SyscallOverhead+c.PDChange && c.PDChange < c.SyscallOverhead+c.PTEUpdate) {
		t.Fatalf("cost ordering broken: %+v", c)
	}
}

func TestSerialisedCompute(t *testing.T) {
	s := sim.New(1)
	sched := NewScheduler(s)
	a, _ := sched.Admit("a", atropos.QoS{P: ms(100), S: ms(50), X: true})
	b, _ := sched.Admit("b", atropos.QoS{P: ms(100), S: ms(50), X: true})
	var doneA, doneB sim.Time
	s.Spawn("a", func(p *sim.Proc) {
		a.Compute(p, 10*time.Millisecond)
		doneA = p.Now()
	})
	s.Spawn("b", func(p *sim.Proc) {
		b.Compute(p, 10*time.Millisecond)
		doneB = p.Now()
	})
	s.RunUntilIdle(1 << 20)
	// One CPU: 20ms of work total takes 20ms; both finish 10..20ms.
	last := doneA
	if doneB > last {
		last = doneB
	}
	if last != sim.Time(20*time.Millisecond) {
		t.Fatalf("last completion %v, want 20ms (serialised)", last)
	}
	if doneA == doneB {
		t.Fatal("computations finished simultaneously on one CPU")
	}
}

func TestComputeZeroDuration(t *testing.T) {
	s := sim.New(1)
	sched := NewScheduler(s)
	a, _ := sched.Admit("a", atropos.QoS{P: ms(100), S: ms(50)})
	done := false
	s.Spawn("a", func(p *sim.Proc) {
		a.Compute(p, 0)
		a.Compute(p, -time.Second)
		done = true
	})
	s.RunUntilIdle(1000)
	if !done || s.Now() != 0 {
		t.Fatalf("done=%v now=%v", done, s.Now())
	}
}

func TestCPUGuaranteesUnderContention(t *testing.T) {
	// Two domains with 2:1 CPU contracts, both always ready: progress 2:1.
	s := sim.New(1)
	sched := NewScheduler(s)
	big, _ := sched.Admit("big", atropos.QoS{P: ms(100), S: ms(60)})
	small, _ := sched.Admit("small", atropos.QoS{P: ms(100), S: ms(30)})
	var nBig, nSmall int
	s.Spawn("big", func(p *sim.Proc) {
		for p.Now() < sim.Time(2*time.Second) {
			big.Compute(p, ms(2))
			nBig++
		}
	})
	s.Spawn("small", func(p *sim.Proc) {
		for p.Now() < sim.Time(2*time.Second) {
			small.Compute(p, ms(2))
			nSmall++
		}
	})
	s.RunUntilIdle(1 << 22)
	ratio := float64(nBig) / float64(nSmall)
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("progress ratio = %.2f (big=%d small=%d), want ~2", ratio, nBig, nSmall)
	}
}

func TestSlackDistribution(t *testing.T) {
	// An x=true domain can exceed its tiny contract on an idle machine.
	s := sim.New(1)
	sched := NewScheduler(s)
	d, _ := sched.Admit("d", atropos.QoS{P: ms(100), S: ms(1), X: true})
	var work time.Duration
	s.Spawn("d", func(p *sim.Proc) {
		for p.Now() < sim.Time(time.Second) {
			d.Compute(p, ms(1))
			work += ms(1)
		}
	})
	s.RunUntilIdle(1 << 22)
	if work < 500*time.Millisecond {
		t.Fatalf("x=true domain got only %v of an idle second", work)
	}
	// An x=false domain is limited to its guarantee.
	s2 := sim.New(1)
	sched2 := NewScheduler(s2)
	e, _ := sched2.Admit("e", atropos.QoS{P: ms(100), S: ms(1), X: false})
	var work2 time.Duration
	s2.Spawn("e", func(p *sim.Proc) {
		for p.Now() < sim.Time(time.Second) {
			e.Compute(p, ms(1))
			work2 += ms(1)
		}
	})
	s2.RunUntilIdle(1 << 22)
	if work2 > 20*time.Millisecond {
		t.Fatalf("x=false domain got %v, want ~10ms", work2)
	}
}

func TestAdmitRemove(t *testing.T) {
	s := sim.New(1)
	sched := NewScheduler(s)
	if _, err := sched.Admit("a", atropos.QoS{P: ms(100), S: ms(80)}); err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Admit("b", atropos.QoS{P: ms(100), S: ms(30)}); err == nil {
		t.Fatal("overcommit admitted")
	}
	if sched.Contracted() != 0.8 {
		t.Fatalf("Contracted = %v", sched.Contracted())
	}
	if err := sched.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := sched.Remove("a"); err == nil {
		t.Fatal("double remove")
	}
	if _, err := sched.Admit("b", atropos.QoS{P: ms(100), S: ms(30)}); err != nil {
		t.Fatal(err)
	}
}

func TestDomainCPUAccessors(t *testing.T) {
	s := sim.New(1)
	sched := NewScheduler(s)
	d, _ := sched.Admit("dom", atropos.QoS{P: ms(100), S: ms(10), X: true})
	if d.Name() != "dom" {
		t.Fatal("Name")
	}
	s.Spawn("t", func(p *sim.Proc) { d.Compute(p, ms(3)) })
	s.RunUntilIdle(1 << 20)
	if d.Charged() != ms(3) {
		t.Fatalf("Charged = %v", d.Charged())
	}
}
