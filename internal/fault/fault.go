// Package fault provides the kernel's fault-dispatch primitives: the
// Nemesis event (an extremely lightweight counter — a transmission is "a
// few sanity checks followed by the increment of a 64-bit value"), and the
// fault record the kernel makes available to the faulting application.
// The kernel part of fault handling is complete once the dispatch has
// occurred: there is no blocking in the kernel for user-level entities.
package fault

import (
	"nemesis/internal/sim"
	"nemesis/internal/vm"
)

// Event is one event endpoint: a monotonically increasing 64-bit value
// written by senders and acknowledged by the receiving domain. OnSend, when
// set, is the receiver's wakeup hook (the activation path).
type Event struct {
	val    uint64
	acked  uint64
	OnSend func()
}

// Send transmits one event.
func (e *Event) Send() {
	e.val++
	if e.OnSend != nil {
		e.OnSend()
	}
}

// Value returns the current counter.
func (e *Event) Value() uint64 { return e.val }

// Pending returns the number of unacknowledged events.
func (e *Event) Pending() uint64 { return e.val - e.acked }

// AckAll consumes all pending events, returning how many there were.
func (e *Event) AckAll() uint64 {
	n := e.val - e.acked
	e.acked = e.val
	return n
}

// AckOne consumes a single pending event; it reports whether one existed.
func (e *Event) AckOne() bool {
	if e.acked == e.val {
		return false
	}
	e.acked++
	return true
}

// Record is the information made available to the application to handle a
// fault: the faulting address and cause, the thread involved, and the time
// of the dispatch.
type Record struct {
	Fault  *vm.Fault
	Thread string
	At     sim.Time
}
