package fault

import (
	"testing"
	"testing/quick"

	"nemesis/internal/vm"
)

func TestEventCounting(t *testing.T) {
	var e Event
	if e.Pending() != 0 || e.Value() != 0 {
		t.Fatal("fresh event nonzero")
	}
	e.Send()
	e.Send()
	if e.Pending() != 2 || e.Value() != 2 {
		t.Fatalf("pending=%d value=%d", e.Pending(), e.Value())
	}
	if !e.AckOne() {
		t.Fatal("AckOne failed")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	if n := e.AckAll(); n != 1 {
		t.Fatalf("AckAll = %d", n)
	}
	if e.AckOne() {
		t.Fatal("AckOne on drained event")
	}
}

func TestEventOnSend(t *testing.T) {
	var e Event
	fired := 0
	e.OnSend = func() { fired++ }
	e.Send()
	e.Send()
	if fired != 2 {
		t.Fatalf("OnSend fired %d times", fired)
	}
}

// Property: value is monotone and pending == value - acked always, for any
// interleaving of sends and acks.
func TestEventMonotoneProperty(t *testing.T) {
	f := func(ops []bool) bool {
		var e Event
		var lastVal uint64
		for _, send := range ops {
			if send {
				e.Send()
			} else {
				e.AckOne()
			}
			if e.Value() < lastVal {
				return false
			}
			lastVal = e.Value()
			if e.Pending() > e.Value() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordCarriesFault(t *testing.T) {
	f := &vm.Fault{VA: 0x1000, Class: vm.PageFault, Access: vm.AccessWrite}
	r := Record{Fault: f, Thread: "worker", At: 42}
	if r.Fault.Class != vm.PageFault || r.Thread != "worker" || r.At != 42 {
		t.Fatal("record fields")
	}
}
