module nemesis

go 1.22
