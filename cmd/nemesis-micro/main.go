// Command nemesis-micro regenerates Table 1 of the paper: the comparative
// VM micro-benchmarks (dirty, (un)prot1, (un)prot100, trap, appel1, appel2)
// on the simulated Nemesis paths, next to the OSF1 V4.0 cost model and the
// paper's published values.
//
// Usage:
//
//	nemesis-micro
package main

import (
	"fmt"
	"log"

	"nemesis/internal/experiments"
)

func main() {
	log.SetFlags(0)
	rows, err := experiments.Table1()
	if err != nil {
		log.Fatalf("nemesis-micro: %v", err)
	}
	fmt.Println("Table 1: comparative micro-benchmarks (microseconds)")
	fmt.Println()
	fmt.Print(experiments.FormatTable1(rows))
	fmt.Println()
	fmt.Println("[pd] = protection-domain variant, shown in square brackets in the paper.")
	fmt.Println("OSF1 column is the calibrated monolithic-kernel cost model (see DESIGN.md).")
}
