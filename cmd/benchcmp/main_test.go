package main

import (
	"regexp"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
BenchmarkFig7Paging-8   	       1	 123456789 ns/op	       42.5 sim_us_p50	     9000 sim_us_p99	  2048 B/op	      17 allocs/op
BenchmarkFig8Attribution 	       1	  99999 ns/op	  1500000 sim_attr_us_fault	       0 sim_attr_us_idle
PASS
ok  	nemesis	1.234s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	fig7 := got["BenchmarkFig7Paging"]
	if fig7.NsPerOp != 123456789 || fig7.BytesPerOp != 2048 || fig7.AllocsPerOp != 17 {
		t.Fatalf("fig7 std fields wrong: %+v", fig7)
	}
	if fig7.Metrics["sim_us_p50"] != 42.5 || fig7.Metrics["sim_us_p99"] != 9000 {
		t.Fatalf("fig7 metrics wrong: %+v", fig7.Metrics)
	}
	attr := got["BenchmarkFig8Attribution"]
	if attr.Metrics["sim_attr_us_fault"] != 1500000 {
		t.Fatalf("attr metrics wrong: %+v", attr.Metrics)
	}
	if attr.Metrics["sim_attr_us_idle"] != 0 {
		t.Fatalf("zero-valued metric dropped: %+v", attr.Metrics)
	}
}

func TestParseBenchBadValue(t *testing.T) {
	if _, err := parseBench(strings.NewReader("BenchmarkX 1 oops ns/op\n")); err == nil {
		t.Fatal("accepted a non-numeric field")
	}
}

func TestPctDelta(t *testing.T) {
	for _, tc := range []struct{ old, new, want float64 }{
		{0, 0, 0},   // both zero: no drift
		{0, 5, 100}, // new metric from a zero baseline counts as full drift
		{100, 90, -10},
		{100, 125, 25},
	} {
		if got := pctDelta(tc.old, tc.new); got != tc.want {
			t.Errorf("pctDelta(%v, %v) = %v, want %v", tc.old, tc.new, got, tc.want)
		}
	}
}

func defaultGate(t *testing.T) *regexp.Regexp {
	t.Helper()
	return regexp.MustCompile("sim_us|sim_attr")
}

func runCompare(t *testing.T, base Baseline, cur map[string]Result) (string, []string) {
	t.Helper()
	var sb strings.Builder
	failures := compare(&sb, base, cur, defaultGate(t), 10, false)
	return sb.String(), failures
}

func TestCompareClean(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 100, Metrics: map[string]float64{"sim_us_p50": 1000}},
	}}
	cur := map[string]Result{
		// Wall-clock drift is informational only; sim metric within gate.
		"BenchmarkA": {NsPerOp: 900, Metrics: map[string]float64{"sim_us_p50": 1050}},
	}
	_, failures := runCompare(t, base, cur)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
}

func TestCompareDriftFails(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {Metrics: map[string]float64{"sim_attr_us_fault": 1000}},
	}}
	cur := map[string]Result{
		"BenchmarkA": {Metrics: map[string]float64{"sim_attr_us_fault": 1200}},
	}
	_, failures := runCompare(t, base, cur)
	if len(failures) != 1 || !strings.Contains(failures[0], "sim_attr_us_fault") {
		t.Fatalf("drifted sim_attr metric not caught: %v", failures)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Result{"BenchmarkGone": {NsPerOp: 1}}}
	_, failures := runCompare(t, base, map[string]Result{"BenchmarkOther": {NsPerOp: 1}})
	if len(failures) != 1 || !strings.Contains(failures[0], "missing from input") {
		t.Fatalf("missing benchmark not caught: %v", failures)
	}
}

func TestCompareVanishedMetricFails(t *testing.T) {
	// A gated metric present in the baseline but absent from the input reads
	// as zero — that is a -100% drift, not a silent pass.
	base := Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {Metrics: map[string]float64{"sim_us_p50": 1000}},
	}}
	_, failures := runCompare(t, base, map[string]Result{"BenchmarkA": {}})
	if len(failures) != 1 || !strings.Contains(failures[0], "-100.0%") {
		t.Fatalf("vanished metric not caught: %v", failures)
	}
}

func TestCompareZeroBaselineMetric(t *testing.T) {
	// 0 -> 0 passes; 0 -> nonzero counts as 100% drift and fails the gate.
	base := Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {Metrics: map[string]float64{"sim_us_misses": 0}},
	}}
	_, failures := runCompare(t, base, map[string]Result{
		"BenchmarkA": {Metrics: map[string]float64{"sim_us_misses": 0}},
	})
	if len(failures) != 0 {
		t.Fatalf("0 -> 0 should pass: %v", failures)
	}
	_, failures = runCompare(t, base, map[string]Result{
		"BenchmarkA": {Metrics: map[string]float64{"sim_us_misses": 3}},
	})
	if len(failures) != 1 {
		t.Fatalf("0 -> 3 should fail the gate: %v", failures)
	}
}

func TestCompareNewEntriesNotedNotFailed(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {Metrics: map[string]float64{"sim_us_p50": 1000}},
	}}
	cur := map[string]Result{
		"BenchmarkA": {Metrics: map[string]float64{
			"sim_us_p50":        1000,
			"sim_attr_us_fault": 777, // new gated metric, no baseline yet
		}},
		"BenchmarkNew": {NsPerOp: 5},
	}
	out, failures := runCompare(t, base, cur)
	if len(failures) != 0 {
		t.Fatalf("new entries must not fail: %v", failures)
	}
	if !strings.Contains(out, "# new gated metric (not in baseline): BenchmarkA sim_attr_us_fault") {
		t.Fatalf("new gated metric not noted:\n%s", out)
	}
	if !strings.Contains(out, "# new benchmark (not in baseline): BenchmarkNew") {
		t.Fatalf("new benchmark not noted:\n%s", out)
	}
}

func TestCompareAllocGate(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Result{"BenchmarkA": {AllocsPerOp: 100}}}
	cur := map[string]Result{"BenchmarkA": {AllocsPerOp: 150}}
	var sb strings.Builder
	if f := compare(&sb, base, cur, defaultGate(t), 10, false); len(f) != 0 {
		t.Fatalf("allocs must not gate by default: %v", f)
	}
	if f := compare(&sb, base, cur, defaultGate(t), 10, true); len(f) != 1 {
		t.Fatalf("-fail-allocs must gate alloc growth: %v", f)
	}
}
