// Command benchcmp compares `go test -bench` output against a committed
// baseline (BENCH_BASELINE.json), in the spirit of benchstat but with no
// external dependencies and a gate suited to a deterministic simulator:
//
//   - Metrics whose unit matches -gate (default "sim_us|sim_attr|
//     sim_events|sim_fork|sim_summary") are simulated-time or
//     snapshot-accounting results. They are deterministic — any drift
//     beyond -fail-over percent means the simulation's behaviour changed,
//     and the comparison fails.
//   - Wall-clock results (ns/op) and allocation counts (B/op, allocs/op)
//     are reported informationally; they vary with hardware and load, so
//     they never fail the comparison by default. Use -fail-allocs to also
//     gate allocs/op, which is deterministic for a fixed workload.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchtime=1x -benchmem ./... | \
//	    go run ./cmd/benchcmp -baseline BENCH_BASELINE.json -fail-over 10
//	go test ... | go run ./cmd/benchcmp -baseline BENCH_BASELINE.json -update
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the committed file format.
type Baseline struct {
	// Note documents how to regenerate the file.
	Note       string            `json:"note"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBench parses `go test -bench` output into per-benchmark results.
func parseBench(r io.Reader) (map[string]Result, error) {
	out := map[string]Result{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		res := Result{Metrics: map[string]float64{}}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchcmp: bad value %q on %q", fields[i], sc.Text())
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsPerOp = val
			default:
				res.Metrics[unit] = val
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		out[m[1]] = res
	}
	return out, sc.Err()
}

func pctDelta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 100
	}
	return (new - old) / old * 100
}

// compare renders the comparison table to w and returns the gate failures:
// baseline benchmarks missing from the input, gated metrics drifted beyond
// failOver percent (including metrics that vanished — they read as zero),
// and, when failAllocs is set, allocs/op growth. Benchmarks or gated metrics
// that are new (absent from the baseline) are noted but never fail.
func compare(w io.Writer, base Baseline, current map[string]Result, gateRe *regexp.Regexp, failOver float64, failAllocs bool) []string {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	fmt.Fprintf(w, "%-36s %14s %14s %14s\n", "benchmark", "ns/op Δ%", "allocs/op Δ%", "gated")
	for _, name := range names {
		old := base.Benchmarks[name]
		cur, ok := current[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from input", name))
			continue
		}
		gated := "-"
		units := make([]string, 0, len(old.Metrics))
		for unit := range old.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			if !gateRe.MatchString(unit) {
				continue
			}
			d := pctDelta(old.Metrics[unit], cur.Metrics[unit])
			gated = fmt.Sprintf("%s %+.1f%%", unit, d)
			if d > failOver || d < -failOver {
				failures = append(failures, fmt.Sprintf("%s: %s drifted %+.1f%% (%.4g -> %.4g); deterministic sim metric, behaviour changed",
					name, unit, d, old.Metrics[unit], cur.Metrics[unit]))
			}
		}
		curUnits := make([]string, 0, len(cur.Metrics))
		for unit := range cur.Metrics {
			curUnits = append(curUnits, unit)
		}
		sort.Strings(curUnits)
		for _, unit := range curUnits {
			if _, ok := old.Metrics[unit]; !ok && gateRe.MatchString(unit) {
				fmt.Fprintf(w, "# new gated metric (not in baseline): %s %s\n", name, unit)
			}
		}
		allocD := pctDelta(old.AllocsPerOp, cur.AllocsPerOp)
		if failAllocs && allocD > failOver {
			failures = append(failures, fmt.Sprintf("%s: allocs/op grew %+.1f%% (%.0f -> %.0f)",
				name, allocD, old.AllocsPerOp, cur.AllocsPerOp))
		}
		fmt.Fprintf(w, "%-36s %+13.1f%% %+13.1f%% %14s\n", name, pctDelta(old.NsPerOp, cur.NsPerOp), allocD, gated)
	}
	newNames := make([]string, 0, len(current))
	for name := range current {
		if _, ok := base.Benchmarks[name]; !ok {
			newNames = append(newNames, name)
		}
	}
	sort.Strings(newNames)
	for _, name := range newNames {
		fmt.Fprintf(w, "# new benchmark (not in baseline): %s\n", name)
	}
	return failures
}

func main() {
	log.SetFlags(0)
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "baseline file to compare against")
	update := flag.Bool("update", false, "rewrite the baseline from the input instead of comparing")
	failOver := flag.Float64("fail-over", 10, "fail when a gated metric drifts more than this percent")
	gate := flag.String("gate", "sim_us|sim_attr|sim_events|sim_fork|sim_summary", "regexp: metric units to gate (deterministic simulated-time results)")
	failAllocs := flag.Bool("fail-allocs", false, "also gate allocs/op increases beyond -fail-over percent")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatalf("benchcmp: %v", err)
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(current) == 0 {
		log.Fatal("benchcmp: no benchmark results in input")
	}

	if *update {
		b := Baseline{
			Note:       "Regenerate with: make bench-baseline (parses `go test -bench` output via cmd/benchcmp -update).",
			Benchmarks: current,
		}
		buf, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("benchcmp: wrote %d benchmarks to %s\n", len(current), *baselinePath)
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		log.Fatalf("benchcmp: %v (run with -update to create the baseline)", err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		log.Fatalf("benchcmp: %s: %v", *baselinePath, err)
	}
	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		log.Fatalf("benchcmp: bad -gate: %v", err)
	}

	failures := compare(os.Stdout, base, current, gateRe, *failOver, *failAllocs)
	if len(failures) > 0 {
		fmt.Println()
		for _, f := range failures {
			fmt.Println("FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Println("\nbenchcmp: ok")
}
