// Command nemesis-serve runs the experiments-as-a-service daemon: an HTTP
// API over the deterministic simulation experiments, fronted by a
// content-addressed result cache.
//
//	nemesis-serve -addr :8080
//
//	curl -s localhost:8080/run -d '{"kind":"figure","figure":8}'
//	curl -s localhost:8080/jobs -d '{"kind":"suite","measure":"15s"}'
//	curl -s localhost:8080/jobs/j1/events        # SSE progress stream
//	curl -s localhost:8080/jobs/j1/result
//	curl -s localhost:8080/metrics               # Prometheus text exposition
//
// Because every experiment is a pure function of its spec, identical
// submissions — regardless of field order, default spelling, or duration
// format — coalesce onto one running job or hit the cache (X-Cache: hit).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nemesis/internal/serve"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent jobs (default GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queued-job bound before 429 (default 256)")
	cache := flag.Int("cache", 0, "result cache entries (default 512)")
	timeout := flag.Duration("timeout", 0, "per-job wall-clock cap (default 10m)")
	sweepWorkers := flag.Int("sweep-workers", 0, "per-job sweep fan-out (default NEMESIS_SWEEP_WORKERS or GOMAXPROCS; results identical at any value)")
	quiet := flag.Bool("quiet", false, "disable structured request/job logging")
	flag.Parse()

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	s := serve.New(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		JobTimeout:   *timeout,
		SweepWorkers: *sweepWorkers,
		Logger:       logger,
	})
	srv := &http.Server{Addr: *addr, Handler: s.Handler()}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		log.Println("nemesis-serve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		s.Close()
	}()

	log.Printf("nemesis-serve: listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("nemesis-serve: %v", err)
	}
}
