// Command nemesis-flame turns the simulator's exact sim-time attribution
// into flamegraphs: where did every microsecond of every domain's lifetime
// go — running, waiting for the CPU, blocked under a named fault hop, or
// idle.
//
// Two modes:
//
//	run (default): execute the attribution experiment — a scaled Fig. 7 or
//	Fig. 8 paging run, by default both without and with the 5%-slice hog —
//	fanned across sweep workers, and write the folded-stack profile
//	(-o, stacks prefixed by cell name when more than one cell runs) and
//	optionally a flamegraph SVG (-svg). Output is byte-identical at any
//	worker count.
//
//	-in profile.folded: skip the run and render an existing folded profile
//	(e.g. from nemesis-paging -simprofile) to the -svg file.
//
// The SVG is self-contained (no external tools) and byte-deterministic for
// a given input.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"nemesis/internal/experiments"
	"nemesis/internal/experiments/sweep"
	"nemesis/internal/obs"
)

func main() {
	log.SetFlags(0)
	fig := flag.Int("fig", 8, "figure workload to profile: 7 (paging in) or 8 (paging out)")
	cells := flag.String("cells", "base,hog", "comma-separated run cells: base (three contracted apps) and/or hog (plus the 5%-slice hog)")
	measure := flag.Duration("measure", 8*time.Second, "measured window of simulated time")
	seed := flag.Int64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 0, "sweep fan-out width (0 = NEMESIS_SWEEP_WORKERS or GOMAXPROCS)")
	out := flag.String("o", "-", "write the folded-stack profile here (- = stdout)")
	svgPath := flag.String("svg", "", "render a flamegraph SVG of the profile to this file")
	in := flag.String("in", "", "render an existing folded profile instead of running (requires -svg)")
	flag.Parse()

	if *in != "" {
		if *svgPath == "" {
			log.Fatal("nemesis-flame: -in needs -svg (nothing else to do with an existing profile)")
		}
		f, err := os.Open(*in)
		if err != nil {
			log.Fatalf("nemesis-flame: %v", err)
		}
		lines, err := obs.ParseFolded(f)
		f.Close()
		if err != nil {
			log.Fatalf("nemesis-flame: %v", err)
		}
		writeSVG(*svgPath, lines)
		return
	}

	folded := runCells(*fig, *cells, *measure, *seed, *workers)
	if *out == "-" {
		fmt.Print(folded)
	} else {
		writeFile(*out, folded)
	}
	if *svgPath != "" {
		lines, err := obs.ParseFolded(strings.NewReader(folded))
		if err != nil {
			log.Fatalf("nemesis-flame: internal: own folded output unparseable: %v", err)
		}
		writeSVG(*svgPath, lines)
	}
}

// runCells executes the requested attribution cells across sweep workers and
// returns the concatenated folded profile. With more than one cell, each
// stack is prefixed with its cell name so the flamegraph nests by cell.
func runCells(fig int, spec string, measure time.Duration, seed int64, workers int) string {
	names := strings.Split(spec, ",")
	for _, n := range names {
		if n != "base" && n != "hog" {
			log.Fatalf("nemesis-flame: unknown cell %q (want base or hog)", n)
		}
	}
	if workers <= 0 {
		workers = sweep.Workers()
	}
	prefix := len(names) > 1
	outs, err := sweep.MapWorkers(workers, names, func(name string) (string, error) {
		r, err := experiments.RunAttribution(experiments.AttributionOptions{
			Fig:     fig,
			Hog:     name == "hog",
			Measure: measure,
			Seed:    seed,
		})
		if err != nil {
			return "", err
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "# cell %s: fig=%d hog=%v measure=%v seed=%d\n",
			name, fig, name == "hog", measure, seed)
		for _, line := range strings.Split(strings.TrimRight(r.Folded, "\n"), "\n") {
			if prefix {
				sb.WriteString(name + ";")
			}
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
		return sb.String(), nil
	})
	if err != nil {
		log.Fatalf("nemesis-flame: %v", err)
	}
	return strings.Join(outs, "")
}

func writeSVG(path string, lines []obs.FoldedLine) {
	writeRender(path, func(w io.Writer) error { return obs.WriteFlameSVG(w, lines) })
}

func writeFile(path, content string) {
	writeRender(path, func(w io.Writer) error {
		_, err := io.WriteString(w, content)
		return err
	})
}

func writeRender(path string, render func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("nemesis-flame: %v", err)
	}
	if err := render(f); err != nil {
		f.Close()
		log.Fatalf("nemesis-flame: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("nemesis-flame: %v", err)
	}
}
