// Command nemesis-timeline converts and validates timeline artifacts:
//
//	nemesis-timeline -in run.jsonl -out run.json
//	         convert a compact JSONL timeline dump (nemesis-paging
//	         -timeline-jsonl) into Chrome trace-event JSON for
//	         ui.perfetto.dev
//	nemesis-timeline -check run.json
//	         validate a trace-event JSON file against the minimal schema
//	         (non-empty traceEvents; name/phase/pid/ts on every event)
//
// Both may be combined: convert, then validate the result.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nemesis/internal/obs"
)

func main() {
	log.SetFlags(0)
	in := flag.String("in", "", "JSONL timeline dump to convert")
	out := flag.String("out", "", "trace-event JSON output path (default stdout)")
	check := flag.String("check", "", "trace-event JSON file to validate")
	flag.Parse()

	if *in == "" && *check == "" {
		log.Fatal("nemesis-timeline: nothing to do (want -in and/or -check)")
	}

	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatalf("nemesis-timeline: %v", err)
		}
		dump, err := obs.ParseTimelineJSONL(f)
		f.Close()
		if err != nil {
			log.Fatalf("nemesis-timeline: %v", err)
		}
		w := os.Stdout
		if *out != "" {
			w, err = os.Create(*out)
			if err != nil {
				log.Fatalf("nemesis-timeline: %v", err)
			}
		}
		if err := dump.WriteTrace(w); err != nil {
			log.Fatalf("nemesis-timeline: %v", err)
		}
		if *out != "" {
			if err := w.Close(); err != nil {
				log.Fatalf("nemesis-timeline: %v", err)
			}
			fmt.Printf("wrote %s: %d tracks, %d spans, %d audit events\n",
				*out, len(dump.Tracks), len(dump.Spans), len(dump.Audit))
		}
	}

	if *check != "" {
		f, err := os.Open(*check)
		if err != nil {
			log.Fatalf("nemesis-timeline: %v", err)
		}
		err = obs.ValidateTrace(f)
		f.Close()
		if err != nil {
			log.Fatalf("nemesis-timeline: %s: %v", *check, err)
		}
		fmt.Printf("%s: valid trace-event JSON\n", *check)
	}
}
