// Command nemesis-paging regenerates the paper's paging experiments:
//
//	-fig 7   paging in  (three domains, 10/20/40% disk guarantees)
//	-fig 8   paging out (the "forgetful" stretch driver)
//	-fig 9   file-system isolation (50% FS client vs two pagers)
//	-fig 0   run every ablation (laxity, FCFS, crosstalk, slack, revocation)
//	-ext     run the extensions (pipeline depth, second chance, guarded
//	         page table, stream paging)
//	-forked=false
//	         measure figs 7/8/9 and the suite's heavy cells on the warmed
//	         world itself instead of on a fork of it; the outputs are
//	         byte-identical either way, the fork just makes the warm-up
//	         reusable (with -metrics the run prints the measured
//	         fork-vs-boot wall times). -timeline and -simprofile always use
//	         the legacy in-place harness.
//	-e8 sweep|outage|degrade|all
//	         run the netswap experiments (remote paging over a simulated
//	         network: latency/loss sweep, outage isolation, tiered
//	         degradation)
//	-suite   run the full suite (Table 1, Figs. 7–9, ablations, extensions,
//	         netswap) as independent cells fanned across -workers goroutines;
//	         output order and content are identical at any worker count
//	-cluster run the cluster paging scenario: -cluster-machines independent
//	         machines × -cluster-domains self-paging domains each, paging
//	         remotely to a pool of -cluster-servers swap servers per machine
//	         under byte-reserving admission; prints the per-machine summary
//	         table (byte-identical at any -workers count) and optionally
//	         exports the full result as JSON with -cluster-json; with
//	         -cluster-trace it also records every machine's timeline and
//	         writes ONE merged Perfetto trace — a process lane per machine
//	         and per swap server, with flow arrows linking each client
//	         net.out hop to the server-side service slice it triggered
//
// The -suite-json and -cluster-json exports use the same spec/result schema
// as the nemesis-serve HTTP API (internal/experiments.Spec/Result): for a
// given spec the CLI file and the daemon's response body are byte-identical.
//
//	-timeline out.json
//	         export the run's timeline (figs 7/8/9) as Chrome trace-event
//	         JSON, loadable in ui.perfetto.dev; adds a deterministic
//	         revocation episode to figs 7/8 so revocation phases appear
//	-timeline-jsonl out.jsonl
//	         export the compact JSONL timeline dump instead (convert or
//	         validate with nemesis-timeline)
//	-simprofile out.folded
//	         write the exact sim-time attribution profile (figs 7/8) in
//	         folded-stack form; render it with nemesis-flame -in
//	-cpuprofile/-memprofile
//	         write pprof profiles for performance work; flushed even on
//	         early-exit errors
//
// The top halves of Figs. 7/8 (sustained bandwidth series) print as TSV;
// summary ratios follow. Use nemesis-trace for the bottom halves.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"nemesis/internal/core"
	"nemesis/internal/experiments"
	"nemesis/internal/experiments/sweep"
)

// stopProfiles flushes any active pprof profiles. All error exits go through
// fatalf/fatal so the profiles survive them — log.Fatalf alone would bypass
// the deferred flush.
var stopProfiles = func() {}

func fatalf(format string, args ...any) {
	stopProfiles()
	log.Fatalf(format, args...)
}

func fatal(v ...any) {
	stopProfiles()
	log.Fatal(v...)
}

// startProfiles begins the requested pprof captures and returns an
// idempotent flush: stop the CPU profile, then collect garbage and write the
// heap profile, closing both files.
func startProfiles(cpupath, mempath string) func() {
	var cpuf *os.File
	if cpupath != "" {
		f, err := os.Create(cpupath)
		if err != nil {
			fatalf("nemesis-paging: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("nemesis-paging: %v", err)
		}
		cpuf = f
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuf != nil {
				pprof.StopCPUProfile()
				cpuf.Close()
			}
			if mempath == "" {
				return
			}
			f, err := os.Create(mempath)
			if err != nil {
				log.Printf("nemesis-paging: %v", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("nemesis-paging: %v", err)
			}
		})
	}
}

func main() {
	log.SetFlags(0)
	fig := flag.Int("fig", 7, "figure to regenerate: 7, 8, 9, or 0 for ablations")
	ext := flag.Bool("ext", false, "run the extension experiments instead")
	measure := flag.Duration("measure", 40*time.Second, "measured window of simulated time")
	seed := flag.Int64("seed", 1, "simulation seed")
	metrics := flag.Bool("metrics", false, "enable fault-path telemetry and append span/metric summaries (figs 7/8)")
	forked := flag.Bool("forked", true, "measure figs 7/8/9 on a fork of the warmed world (byte-identical to a cold boot; -forked=false boots cold)")
	e8 := flag.String("e8", "", "netswap experiment: sweep, outage, degrade, or all")
	timeline := flag.String("timeline", "", "write a Perfetto-loadable trace-event JSON timeline to this file (figs 7/8/9)")
	timelineJSONL := flag.String("timeline-jsonl", "", "write the compact JSONL timeline dump to this file (convert with nemesis-timeline)")
	simprofile := flag.String("simprofile", "", "write the folded-stack sim-time attribution profile to this file (figs 7/8; implies telemetry)")
	suite := flag.Bool("suite", false, "run the full experiment suite as parallel deterministic cells")
	suiteJSON := flag.String("suite-json", "", "write the full suite result as JSON to this file (same schema and bytes as the nemesis-serve API)")
	cluster := flag.Bool("cluster", false, "run the cluster paging scenario (N machines x M self-paging domains over a swap-server pool)")
	clusterMachines := flag.Int("cluster-machines", 0, "cluster machine count (0 = default 4)")
	clusterDomains := flag.Int("cluster-domains", 0, "domains per cluster machine (0 = default 250)")
	clusterServers := flag.Int("cluster-servers", 0, "swap servers per cluster machine (0 = default 2)")
	clusterJSON := flag.String("cluster-json", "", "write the full cluster result as JSON to this file")
	clusterTrace := flag.String("cluster-trace", "", "write the merged cross-machine Perfetto trace (client + swap-server lanes with flow arrows) to this file")
	workers := flag.Int("workers", 0, "sweep fan-out width (0 = NEMESIS_SWEEP_WORKERS or GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" || *memprofile != "" {
		stopProfiles = startProfiles(*cpuprofile, *memprofile)
		defer stopProfiles()
	}

	if *suite {
		runSuite(*measure, *workers, *suiteJSON, *forked)
		return
	}
	if *cluster {
		// The cluster's own 2 s default applies unless -measure was given
		// explicitly: the scenario is sized in domains, not window length,
		// and the figures' 40 s default would just multiply the run time.
		clusterMeasure := time.Duration(0)
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "measure" {
				clusterMeasure = *measure
			}
		})
		runCluster(experiments.ClusterOptions{
			Machines:          *clusterMachines,
			DomainsPerMachine: *clusterDomains,
			Servers:           *clusterServers,
			Measure:           clusterMeasure,
			Seed:              *seed,
			Workers:           *workers,
			Trace:             *clusterTrace != "",
		}, *clusterJSON, *clusterTrace)
		return
	}
	if *ext {
		runExtensions(*measure)
		return
	}
	if *e8 != "" {
		runNetswap(*e8, *measure)
		return
	}

	switch *fig {
	case 7, 8:
		opt := experiments.DefaultPagingOptions()
		opt.Measure = *measure
		opt.Seed = *seed
		if *fig == 8 {
			opt.Write = true
			opt.Forgetful = true
		}
		opt.Telemetry = *metrics || *simprofile != ""
		opt.Timeline = *timeline != "" || *timelineJSONL != ""
		// Timeline recording and the attribution profile need the legacy
		// in-place harness. Everything else runs the warm+measure protocol
		// sweeps and the server use: -forked measures on a fork of the
		// warmed world, -forked=false lets the warmed world continue in
		// place — the two are byte-identical, so the flag only changes how
		// much boot work a repeat run would pay.
		useProtocol := !opt.Timeline && *simprofile == ""
		useForked := useProtocol && *forked
		var r *experiments.PagingResult
		var err error
		var warmDur, forkDur time.Duration
		switch {
		case useForked:
			warmStart := time.Now()
			warm, werr := experiments.WarmPaging(opt)
			if werr != nil {
				fatalf("nemesis-paging: %v", werr)
			}
			warmDur = time.Since(warmStart)
			forkStart := time.Now()
			world, ferr := warm.Fork()
			if ferr != nil {
				fatalf("nemesis-paging: %v", ferr)
			}
			forkDur = time.Since(forkStart)
			warm.Sys.Shutdown()
			r, err = world.Measure(opt.Measure)
		case useProtocol:
			r, err = experiments.RunPagingForked(opt, false)
		default:
			r, err = experiments.RunPaging(opt)
		}
		if err != nil {
			fatalf("nemesis-paging: %v", err)
		}
		writeTimelines(r.Sys, *timeline, *timelineJSONL)
		if *simprofile != "" {
			if err := r.Sys.CheckAttribution(); err != nil {
				fatalf("nemesis-paging: %v", err)
			}
			writeFile(*simprofile, r.Sys.WriteAttributionFolded)
		}
		fmt.Printf("# Figure %d: sustained bandwidth (Mbit/s), sampled every %v\n", *fig, opt.SampleEvery)
		if err := r.Set.WriteTSV(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Printf("\n# mean Mbit/s over measured window: ")
		for i, m := range r.MeanMbps {
			if i > 0 {
				fmt.Printf(" : ")
			}
			fmt.Printf("%.2f", m)
		}
		fmt.Printf("\n# consecutive ratios (want ~2.0 each for 10/20/40%% contracts): %v\n", fmtRatios(r.Ratios()))
		fmt.Printf("# max single lax charge per client (s) — must stay <= 0.010:\n")
		for _, e := range sortedEntries(r.Log.MaxLax()) {
			fmt.Printf("#   %s\t%.4f\n", e.k, e.v)
		}
		if *metrics {
			if useForked {
				fmt.Printf("\n# fork vs boot: warm boot %v (paid once per sweep axis), fork %v (paid per cell)\n",
					warmDur.Round(time.Millisecond), forkDur.Round(time.Microsecond))
			}
			fmt.Println("\n# per-domain snapshot:")
			if err := r.Sys.WriteTopTable(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println("\n# span hop latency breakdown:")
			if err := r.Sys.Obs.WriteSpansTSV(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println("\n# metric registry:")
			if err := r.Sys.Obs.WriteMetricsTSV(os.Stdout); err != nil {
				fatal(err)
			}
		}

	case 9:
		opt := experiments.DefaultFig9Options()
		opt.Measure = *measure
		opt.Seed = *seed
		opt.Timeline = *timeline != "" || *timelineJSONL != ""
		var r *experiments.Fig9Result
		var err error
		if !opt.Timeline {
			r, err = experiments.RunFig9Forked(opt, *forked)
		} else {
			r, err = experiments.RunFig9(opt)
		}
		if err != nil {
			fatalf("nemesis-paging: %v", err)
		}
		writeTimelines(r.ContendedSys, *timeline, *timelineJSONL)
		fmt.Println("# Figure 9: file-system client isolation")
		fmt.Printf("fs alone:\t%.2f Mbit/s\n", r.AloneMbps)
		fmt.Printf("fs + 2 pagers:\t%.2f Mbit/s\n", r.ContendedMbps)
		fmt.Printf("isolation:\t%.3f (1.0 = perfect)\n", r.Isolation())

	case 0:
		runAblations(*measure)

	default:
		fatalf("nemesis-paging: unknown figure %d", *fig)
	}
}

// writeFile renders into a freshly created file, exiting (with profiles
// flushed) on any failure.
func writeFile(path string, render func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("nemesis-paging: %v", err)
	}
	if err := render(f); err != nil {
		f.Close()
		fatalf("nemesis-paging: %v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("nemesis-paging: %v", err)
	}
}

// writeTimelines exports the run's timeline in whichever formats were
// requested (no-ops on empty paths or a nil system).
func writeTimelines(sys *core.System, tracePath, jsonlPath string) {
	if sys == nil {
		return
	}
	if tracePath != "" {
		writeFile(tracePath, sys.WriteTimeline)
	}
	if jsonlPath != "" {
		writeFile(jsonlPath, sys.WriteTimelineJSONL)
	}
}

// runCluster runs the cluster paging scenario, prints the deterministic
// per-machine summary, and optionally exports the full result as JSON and
// the merged cross-machine trace. The result carries the normalized spec,
// so the JSON export has the same schema — and for the same spec, the same
// bytes — as the nemesis-serve API; tracing never changes the result bytes.
func runCluster(opt experiments.ClusterOptions, jsonPath, tracePath string) {
	start := time.Now()
	spec := experiments.Spec{
		Kind:              experiments.KindCluster,
		Machines:          opt.Machines,
		DomainsPerMachine: opt.DomainsPerMachine,
		Servers:           opt.Servers,
		Measure:           experiments.Duration(opt.Measure),
		Seed:              opt.Seed,
	}
	if err := spec.Normalize(); err != nil {
		fatalf("nemesis-paging: %v", err)
	}
	res, err := experiments.RunClusterContext(context.Background(), experiments.ClusterOptions{
		Machines:          spec.Machines,
		DomainsPerMachine: spec.DomainsPerMachine,
		Servers:           spec.Servers,
		Measure:           spec.Measure.D(),
		Seed:              spec.Seed,
		Workers:           opt.Workers,
		Trace:             opt.Trace,
	})
	if err != nil {
		fatalf("nemesis-paging: %v", err)
	}
	if err := res.WriteSummary(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("# cluster: %.2fs wall\n", time.Since(start).Seconds())
	if jsonPath != "" {
		writeResultJSON(jsonPath, &experiments.Result{Spec: spec, Cluster: res})
	}
	if tracePath != "" {
		writeFile(tracePath, res.Trace.WriteTrace)
	}
}

// runSuite fans the whole experiment suite across sweep workers and prints
// each cell's summary in fixed suite order, optionally exporting the
// API-schema JSON result.
func runSuite(measure time.Duration, workers int, jsonPath string, forked bool) {
	if workers <= 0 {
		workers = sweep.Workers()
	}
	start := time.Now()
	spec := experiments.Spec{
		Kind:    experiments.KindSuite,
		Measure: experiments.Duration(measure),
	}
	var result *experiments.Result
	if forked {
		out, err := experiments.RunSpec(context.Background(), spec, workers)
		if err != nil {
			fatalf("nemesis-paging: %v", err)
		}
		result = out.Result
	} else {
		// The cold escape hatch runs the same warm+measure protocol without
		// forking any world; its output — including the -suite-json bytes —
		// must be identical to the forked run's.
		if err := spec.Normalize(); err != nil {
			fatalf("nemesis-paging: %v", err)
		}
		cells, err := experiments.RunSuiteForked(context.Background(), spec.Measure.D(), workers, false)
		if err != nil {
			fatalf("nemesis-paging: %v", err)
		}
		result = &experiments.Result{Spec: spec, Suite: cells}
	}
	cells := result.Suite
	for _, c := range cells {
		fmt.Printf("# %s\n%s", c.Name, c.Output)
	}
	fmt.Printf("# suite: %d cells, %d workers, %.2fs wall\n", len(cells), workers, time.Since(start).Seconds())
	if jsonPath != "" {
		writeResultJSON(jsonPath, result)
	}
}

// writeResultJSON writes the canonical result encoding — the exact bytes
// nemesis-serve would return for the same spec.
func writeResultJSON(path string, res *experiments.Result) {
	body, err := experiments.EncodeResult(res)
	if err != nil {
		fatal(err)
	}
	writeFile(path, func(w io.Writer) error {
		_, err := w.Write(body)
		return err
	})
}

func runAblations(measure time.Duration) {
	if measure > 15*time.Second {
		measure = 15 * time.Second // ablations need no more
	}
	lx, err := experiments.AblationLaxity(measure)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("A1 laxity:      with=%v  without=%v  txns/period without=%v\n",
		fmtF(lx.WithLaxityMbps), fmtF(lx.WithoutLaxityMbps), fmtF(lx.TxnsPerPeriodWithout))
	fc, err := experiments.AblationFCFS(measure)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("A2 fcfs disk:   atropos=%v  fcfs=%v\n", fmtF(fc.AtroposMbps), fmtF(fc.FCFSMbps))
	ct, err := experiments.AblationCrosstalk(measure)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("A3 crosstalk:   self-paging %.2f->%.2f Mbit/s (iso %.2f)  external pager %.2f->%.2f (iso %.2f)\n",
		ct.SelfAloneMbps, ct.SelfContendedMbps, ct.SelfIsolation(),
		ct.ExtAloneMbps, ct.ExtContendedMbps, ct.ExtIsolation())
	sl, err := experiments.AblationSlack(measure)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("A4 slack flag:  x=true %.2f Mbit/s  x=false %.2f Mbit/s\n", sl.XTrueMbps, sl.XFalseMbps)
	rv, err := experiments.AblationRevocation()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("A5 revocation:  transparent %.3f ms  intrusive %.3f ms\n", rv.TransparentMs, rv.IntrusiveMs)
}

func runExtensions(measure time.Duration) {
	if measure > 15*time.Second {
		measure = 15 * time.Second
	}
	pd, err := experiments.ExtensionPipelineDepth([]int{1, 2, 4, 8, 16}, measure)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("E1 pipeline depth: %v -> %v Mbit/s\n", pd.Depths, fmtF(pd.Mbps))
	ev, err := experiments.ExtensionSecondChance(measure)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("E2 eviction:       fifo %.1f ins/MB (%.1f Mbit/s)  second-chance %.1f ins/MB (%.1f Mbit/s)\n",
		ev.FIFOPageInsPerMB, ev.FIFOMbps, ev.SecondChancePageInsPerMB, ev.SecondChanceMbps)
	gpt, err := experiments.ExtensionGuardedPT()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("E3 guarded PT:     linear %.2fus  guarded %.2fus  (%.1fx slower; paper: ~3x)\n",
		gpt.LinearUS, gpt.GuardedUS, gpt.Slowdown())
	sp, err := experiments.ExtensionStreamPaging(measure)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("E4 stream paging:  demand %.2f Mbit/s  streaming %.2f Mbit/s  (%.2fx; prefetch accuracy %d/%d)\n",
		sp.DemandMbps, sp.StreamingMbps, sp.Speedup(), sp.PrefetchedUsed, sp.Prefetches)
	rb, err := experiments.ExtensionRebalance(measure)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("E5 rebalancer:     worker %.2f -> %.2f Mbit/s (%.1fx; frames %d -> %d, %d moves)\n",
		rb.WithoutMbps, rb.WithMbps, rb.Speedup(), rb.WorkerFramesWithout, rb.WorkerFramesWith, rb.Moves)
	mj, err := experiments.MotivationMJPEG(measure)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("E6 mjpeg player:   QoS miss %.1f%% jitter %.2fms   conventional miss %.1f%% jitter %.2fms\n",
		100*mj.QoSMissRate, mj.QoSJitterMs, 100*mj.FCFSMissRate, mj.FCFSJitterMs)
}

func runNetswap(which string, measure time.Duration) {
	if measure > 15*time.Second {
		measure = 15 * time.Second
	}
	all := which == "all"
	ran := false
	if all || which == "sweep" {
		ran = true
		latencies := []time.Duration{200 * time.Microsecond, time.Millisecond, 2 * time.Millisecond}
		losses := []float64{0, 0.05}
		res, err := experiments.RunNetswapSweep(latencies, losses, measure)
		if err != nil {
			fatal(err)
		}
		fmt.Println("# E8a netswap sweep: fault-latency breakdown vs link latency and loss")
		fmt.Println("latency\tloss\tMbit/s\tnet.out p50/p95 ms\tstore p50/p95 ms\tnet.back p50/p95 ms\trpcs\tretries\ttimeouts")
		for _, c := range res.Cells {
			fmt.Printf("%v\t%.2f\t%.2f\t%.3f/%.3f\t%.3f/%.3f\t%.3f/%.3f\t%d\t%d\t%d\n",
				c.Latency, c.Loss, c.Mbps,
				c.NetOutP50Ms, c.NetOutP95Ms, c.StoreP50Ms, c.StoreP95Ms,
				c.NetBackP50Ms, c.NetBackP95Ms, c.RPCs, c.Retries, c.Timeouts)
		}
	}
	if all || which == "outage" {
		ran = true
		res, err := experiments.RunNetswapOutage(measure / 3)
		if err != nil {
			fatal(err)
		}
		fmt.Println("# E8b netswap outage isolation: Mbit/s before/during/after a remote outage")
		fmt.Printf("local (swap disk):\t%v\n", fmtF(res.LocalMbps[:]))
		fmt.Printf("remote (netswap):\t%v\n", fmtF(res.RemoteMbps[:]))
		fmt.Printf("crosstalk flags: %d (monitor ticks: %d)\n", len(res.Flags), res.MonitorTicks)
		for _, f := range res.Flags {
			fmt.Printf("  FLAG %+v\n", f)
		}
	}
	if all || which == "degrade" {
		ran = true
		res, err := experiments.RunNetswapDegrade(measure / 3)
		if err != nil {
			fatal(err)
		}
		fmt.Println("# E8c netswap tiered degradation: Mbit/s before/during/after a remote outage")
		fmt.Printf("tiered domain:\t%v\tdegraded during outage: %v\n", fmtF(res.Mbps[:]), res.DegradedDuringOutage)
		fmt.Printf("demotions %d  local fallbacks %d  deadline misses %d  degraded entries %d  local hits %d\n",
			res.Stats.Demotions, res.Stats.LocalFallbacks, res.Stats.DeadlineMisses,
			res.Stats.DegradedEntries, res.Stats.LocalHits)
	}
	if !ran {
		fatalf("nemesis-paging: unknown -e8 experiment %q (want sweep, outage, degrade or all)", which)
	}
}

func fmtRatios(rs []float64) string {
	s := ""
	for i, r := range rs {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.2f", r)
	}
	return s
}

func fmtF(fs []float64) string {
	s := "["
	for i, f := range fs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f", f)
	}
	return s + "]"
}

type kv struct {
	k string
	v float64
}

// sortedEntries returns map entries in key order for deterministic output.
func sortedEntries(m map[string]float64) []kv {
	var kvs []kv
	for k, v := range m {
		kvs = append(kvs, kv{k, v})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	return kvs
}
