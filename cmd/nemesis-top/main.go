// Command nemesis-top runs a paging workload with full fault-path
// telemetry and prints periodic per-domain snapshot tables — a `top` for
// the self-paging machine: faults split by fast/worker path, paging
// traffic, revocations, frames held, and end-to-end page-fault latency
// percentiles, plus any QoS-crosstalk flags the monitor raised.
//
//	-fig 7|8       workload to run (the paper's paging-in / paging-out)
//	-measure 20s   measured window of simulated time
//	-interval 5s   snapshot period (simulated time)
//	-seed 1        simulation seed
//	-spans         also dump the retained span table (per-hop TSV)
//	-metrics       also dump the full metric registry as TSV
//	-json          dump the final top table as JSON (rows + rollup) instead
//	-registry-json dump the full registry snapshot as JSON instead
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"nemesis/internal/core"
	"nemesis/internal/experiments"
)

func main() {
	log.SetFlags(0)
	fig := flag.Int("fig", 7, "workload: 7 (paging in) or 8 (paging out)")
	measure := flag.Duration("measure", 20*time.Second, "measured window of simulated time")
	interval := flag.Duration("interval", 5*time.Second, "snapshot period (simulated time)")
	seed := flag.Int64("seed", 1, "simulation seed")
	spans := flag.Bool("spans", false, "dump per-hop span latency TSV at the end")
	metrics := flag.Bool("metrics", false, "dump the metric registry TSV at the end")
	jsonOut := flag.Bool("json", false, "dump the final top table as JSON (rows + rollup)")
	regJSON := flag.Bool("registry-json", false, "dump the full registry snapshot as JSON")
	flag.Parse()

	opt := experiments.DefaultPagingOptions()
	opt.Measure = *measure
	opt.Seed = *seed
	opt.Telemetry = true
	opt.SnapshotEvery = *interval
	if *fig == 8 {
		opt.Write = true
		opt.Forgetful = true
	} else if *fig != 7 {
		log.Fatalf("nemesis-top: unknown figure %d", *fig)
	}
	if !*jsonOut && !*regJSON {
		opt.OnSnapshot = func(sys *core.System) {
			fmt.Printf("--- t=%.1fs ---\n", sys.Sim.Now().Seconds())
			if err := sys.WriteTopTable(os.Stdout); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
	}

	r, err := experiments.RunPaging(opt)
	if err != nil {
		log.Fatalf("nemesis-top: %v", err)
	}
	sys := r.Sys

	if *jsonOut {
		if err := sys.WriteTopJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *regJSON {
		if err := sys.Obs.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if flags := sys.Obs.Flags(); len(flags) > 0 {
		fmt.Printf("# crosstalk flags (%d):\n", len(flags))
		if err := sys.Obs.WriteFlagsTSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if *spans {
		fmt.Println("# span hop latency breakdown:")
		if err := sys.Obs.WriteSpansTSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if *metrics {
		fmt.Println("# metric registry:")
		if err := sys.Obs.WriteMetricsTSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
