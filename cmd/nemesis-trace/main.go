// Command nemesis-trace regenerates the bottom halves of Figs. 7 and 8:
// the detailed USD scheduler trace, as TSV. Each row is one event — a
// transaction (the filled boxes), a lax charge (the solid lines), or a
// periodic allocation (the small arrows) — with client, start, end and
// duration in milliseconds.
//
// Usage:
//
//	nemesis-trace -fig 7 -from 2s -window 4s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"nemesis/internal/experiments"
	"nemesis/internal/sim"
	"nemesis/internal/trace"
)

func main() {
	log.SetFlags(0)
	fig := flag.Int("fig", 7, "experiment whose trace to dump: 7 or 8")
	from := flag.Duration("from", 0, "trace window start, relative to the measured phase")
	window := flag.Duration("window", 4*time.Second, "trace window length (the paper shows 4 s and a 1 s detail)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	opt := experiments.DefaultPagingOptions()
	opt.Seed = *seed
	opt.Measure = *from + *window
	if *fig == 8 {
		opt.Write = true
		opt.Forgetful = true
	} else if *fig != 7 {
		log.Fatalf("nemesis-trace: unknown figure %d", *fig)
	}
	r, err := experiments.RunPaging(opt)
	if err != nil {
		log.Fatalf("nemesis-trace: %v", err)
	}
	start := sim.Time(r.MeasureStart + *from)
	end := start.Add(*window)
	fmt.Printf("# Figure %d scheduler trace, window [%.3fs, %.3fs)\n", *fig, start.Seconds(), end.Seconds())
	sub := &trace.Log{}
	for _, e := range r.Log.Between(start, end) {
		sub.Add(e)
	}
	if err := sub.WriteTSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
