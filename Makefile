GO ?= go
BENCHFLAGS ?= -run=NONE -bench=. -benchtime=1x -benchmem
BASELINE ?= BENCH_BASELINE.json

.PHONY: build test race bench bench-baseline lint suite cluster serve loadtest

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	NEMESIS_SWEEP_WORKERS=8 $(GO) test -race ./...

# Run every benchmark once and compare against the committed baseline.
# Wall-clock (ns/op) and allocation deltas are informational; deterministic
# simulated-time metrics (sim_us*, sim_attr_us*, sim_events*) fail the run
# if they drift >10%.
bench:
	$(GO) test $(BENCHFLAGS) ./... | tee bench.out
	$(GO) run ./cmd/benchcmp -baseline $(BASELINE) -fail-over 10 bench.out

# Re-record the baseline (run on a quiet machine; commit the result).
bench-baseline:
	$(GO) test $(BENCHFLAGS) ./... | tee bench.out
	$(GO) run ./cmd/benchcmp -baseline $(BASELINE) -update bench.out

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Full experiment suite through the parallel sweep runner.
suite:
	$(GO) run ./cmd/nemesis-paging -suite -measure 15s

# Cluster paging scenario at the standard 1,000-domain scale.
cluster:
	$(GO) run ./cmd/nemesis-paging -cluster

# Experiments-as-a-service daemon. Submit specs with e.g.
#   curl -s localhost:8080/run -d '{"kind":"figure","figure":8}'
serve:
	$(GO) run ./cmd/nemesis-serve -addr :8080

# The 1,000-request concurrent load test against the daemon engine,
# under the race detector.
loadtest:
	$(GO) test -race -run 'TestServeLoad' -v ./internal/serve/
