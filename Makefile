GO ?= go
BENCHFLAGS ?= -run=NONE -bench=. -benchtime=1x -benchmem
BASELINE ?= BENCH_BASELINE.json

.PHONY: build test race bench bench-baseline bench-fork lint suite cluster serve loadtest

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	NEMESIS_SWEEP_WORKERS=8 $(GO) test -race ./...

# Run every benchmark once and compare against the committed baseline.
# Wall-clock (ns/op) and allocation deltas are informational; deterministic
# simulated-time and snapshot-accounting metrics (sim_us*, sim_attr_us*,
# sim_events*, sim_fork*) fail the run if they drift >10%.
bench:
	$(GO) test $(BENCHFLAGS) ./... | tee bench.out
	$(GO) run ./cmd/benchcmp -baseline $(BASELINE) -fail-over 10 bench.out

# Price the checkpoint: the fork microbenchmark (wall cost of one fork plus
# its deterministic copy accounting) and the full suite with and without
# world forking. The sim_fork_* metrics are gated by `make bench`; this is
# the quick local view of what forking buys.
bench-fork:
	$(GO) test -run=NONE -bench='BenchmarkFork$$|BenchmarkSuiteForked' -benchtime=1x -benchmem .

# Re-record the baseline (run on a quiet machine; commit the result).
bench-baseline:
	$(GO) test $(BENCHFLAGS) ./... | tee bench.out
	$(GO) run ./cmd/benchcmp -baseline $(BASELINE) -update bench.out

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Full experiment suite through the parallel sweep runner.
suite:
	$(GO) run ./cmd/nemesis-paging -suite -measure 15s

# Cluster paging scenario at the standard 1,000-domain scale.
cluster:
	$(GO) run ./cmd/nemesis-paging -cluster

# Experiments-as-a-service daemon. Submit specs with e.g.
#   curl -s localhost:8080/run -d '{"kind":"figure","figure":8}'
serve:
	$(GO) run ./cmd/nemesis-serve -addr :8080

# The 1,000-request concurrent load test against the daemon engine,
# under the race detector.
loadtest:
	$(GO) test -race -run 'TestServeLoad' -v ./internal/serve/
