// Package nemesis's root benchmark harness regenerates every table and
// figure of the paper's evaluation as a testing.B benchmark. Each benchmark
// runs the corresponding experiment on the simulated machine and reports
// the paper's metric via b.ReportMetric:
//
//	BenchmarkTable1*          sim_us_per_op — Table 1 micro-benchmarks
//	BenchmarkFig7PagingIn     mbps_* and ratio_* — Fig. 7
//	BenchmarkFig8PagingOut    mbps_* and txn_ms — Fig. 8
//	BenchmarkFig8Attribution  sim_attr_us_* — the hog's exact time breakdown
//	BenchmarkFig9Isolation    isolation — Fig. 9
//	BenchmarkAblation*        the A1–A5 ablations from DESIGN.md
//
// Wall-clock ns/op measures the simulator's own cost; the scientific
// results are the reported metrics.
package nemesis

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"nemesis/internal/experiments"
	"nemesis/internal/obs"
)

// table1Rows runs the micro-benchmarks once per call.
func table1Rows(b *testing.B) map[string]experiments.Table1Row {
	b.Helper()
	rows, err := experiments.Table1()
	if err != nil {
		b.Fatal(err)
	}
	m := make(map[string]experiments.Table1Row, len(rows))
	for _, r := range rows {
		m[r.Name] = r
	}
	return m
}

func benchTable1(b *testing.B, name string) {
	b.ReportAllocs()
	var last experiments.Table1Row
	for i := 0; i < b.N; i++ {
		last = table1Rows(b)[name]
	}
	b.ReportMetric(last.NemesisUS, "sim_us/op")
	if last.AltUS > 0 {
		b.ReportMetric(last.AltUS, "sim_us_pd/op")
	}
	if last.OSF1US > 0 {
		b.ReportMetric(last.OSF1US, "osf1_us/op")
	}
}

func BenchmarkTable1Dirty(b *testing.B)   { benchTable1(b, "dirty") }
func BenchmarkTable1Prot1(b *testing.B)   { benchTable1(b, "(un)prot1") }
func BenchmarkTable1Prot100(b *testing.B) { benchTable1(b, "(un)prot100") }
func BenchmarkTable1Trap(b *testing.B)    { benchTable1(b, "trap") }
func BenchmarkTable1Appel1(b *testing.B)  { benchTable1(b, "appel1") }
func BenchmarkTable1Appel2(b *testing.B)  { benchTable1(b, "appel2") }

// benchPagingOpts is the scaled-down configuration benchmarks use: smaller
// stretches and a shorter window keep one iteration under a second of wall
// time while preserving every scheduling effect.
func benchPagingOpts() experiments.PagingOptions {
	opt := experiments.DefaultPagingOptions()
	opt.VirtBytes = 2 << 20
	opt.Measure = 10 * time.Second
	opt.SampleEvery = 2 * time.Second
	return opt
}

func BenchmarkFig7PagingIn(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.PagingResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunPaging(benchPagingOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for i, m := range last.MeanMbps {
		b.ReportMetric(m, fmt.Sprintf("mbps_app%d", i+1))
	}
	for i, r := range last.Ratios() {
		b.ReportMetric(r, fmt.Sprintf("ratio_%d", i+1))
	}
}

func BenchmarkFig8PagingOut(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.PagingResult
	for i := 0; i < b.N; i++ {
		opt := benchPagingOpts()
		opt.Write = true
		opt.Forgetful = true
		r, err := experiments.RunPaging(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for i, m := range last.MeanMbps {
		b.ReportMetric(m, fmt.Sprintf("mbps_app%d", i+1))
	}
	var n int
	var sum float64
	for _, e := range last.Log.Events() {
		if e.Kind == 0 {
			n++
			sum += e.End.Sub(e.Start).Seconds()
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n)*1e3, "txn_ms")
	}
}

func BenchmarkFig8Attribution(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.AttributionResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAttribution(experiments.AttributionOptions{
			Fig: 8, Hog: true, Measure: 8 * time.Second, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	// The hog's exact time breakdown: deterministic sim metrics, so any
	// drift means the attribution or the scheduler changed behaviour.
	hog, ok := last.ProfileFor("hog-5%")
	if !ok {
		b.Fatal("hog profile missing")
	}
	for _, st := range obs.AttrStates {
		b.ReportMetric(float64(hog.Total(st).Microseconds()),
			"sim_attr_us_"+strings.ReplaceAll(st.String(), "-", "_"))
	}
	b.ReportMetric(float64(hog.Elapsed().Microseconds()), "sim_attr_us_elapsed")
}

func BenchmarkFig9Isolation(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		opt := experiments.DefaultFig9Options()
		opt.Measure = 15 * time.Second
		r, err := experiments.RunFig9(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.AloneMbps, "mbps_alone")
	b.ReportMetric(last.ContendedMbps, "mbps_contended")
	b.ReportMetric(last.Isolation(), "isolation")
}

// BenchmarkFork prices the checkpoint itself: one warmed Fig. 7 world,
// forked once per iteration. ns/op is the wall-clock cost of a fork — what
// a sweep cell pays instead of re-running the warm-up — and the sim_fork_*
// metrics are the fork's deterministic copy accounting: frame-store bytes
// copied outright and populated disk chunks shared copy-on-write. Those
// byte counts are pinned by the gate; if they drift, the snapshot either
// started copying what it used to share or stopped capturing state.
func BenchmarkFork(b *testing.B) {
	warm, err := experiments.WarmPaging(benchPagingOpts())
	if err != nil {
		b.Fatal(err)
	}
	defer warm.Sys.Shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	var frameBytes, sharedChunks, cowBytes float64
	for i := 0; i < b.N; i++ {
		snap, err := warm.Sys.Fork()
		if err != nil {
			b.Fatal(err)
		}
		frameBytes = float64(snap.Stats.FrameBytes)
		sharedChunks = float64(snap.Stats.SharedChunks)
		cowBytes = float64(snap.Stats.SharedBytes)
		b.StopTimer()
		snap.Sys.Shutdown()
		b.StartTimer()
	}
	b.ReportMetric(frameBytes, "sim_fork_frame_bytes")
	b.ReportMetric(sharedChunks, "sim_fork_shared_chunks")
	b.ReportMetric(cowBytes, "sim_fork_cow_bytes")
}

// BenchmarkSuiteForked prices the whole evaluation suite with and without
// world forking: the cold sub-benchmark boots every heavy cell from
// scratch, the forked one warms each harness once and forks per cell.
// Comparing the two ns/op figures is the headline wall-clock win of the
// checkpoint work; the fork-equivalence tests pin that both produce the
// same bytes.
func BenchmarkSuiteForked(b *testing.B) {
	for _, mode := range []struct {
		name   string
		forked bool
	}{{"cold", false}, {"forked", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var cells int
			for i := 0; i < b.N; i++ {
				out, err := experiments.RunSuiteForked(context.Background(), time.Second, 4, mode.forked)
				if err != nil {
					b.Fatal(err)
				}
				cells = len(out)
			}
			b.ReportMetric(float64(cells), "suite_cells")
		})
	}
}

func BenchmarkAblationLaxity(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.LaxityResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationLaxity(8 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.WithLaxityMbps[2], "mbps_with_laxity")
	b.ReportMetric(last.WithoutLaxityMbps[2], "mbps_without")
	b.ReportMetric(last.TxnsPerPeriodWithout[2], "txns_per_period_without")
}

func BenchmarkAblationFCFS(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.FCFSResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationFCFS(8 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.AtroposMbps[2]/last.AtroposMbps[0], "atropos_spread")
	b.ReportMetric(last.FCFSMbps[2]/last.FCFSMbps[0], "fcfs_spread")
}

func BenchmarkAblationCrosstalk(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.CrosstalkResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationCrosstalk(8 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.SelfIsolation(), "self_isolation")
	b.ReportMetric(last.ExtIsolation(), "extpager_isolation")
}

func BenchmarkAblationSlack(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.SlackResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSlack(8 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.XTrueMbps, "mbps_xtrue")
	b.ReportMetric(last.XFalseMbps, "mbps_xfalse")
}

func BenchmarkAblationRevocation(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.RevocationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationRevocation()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.TransparentMs, "transparent_ms")
	b.ReportMetric(last.IntrusiveMs, "intrusive_ms")
}

func BenchmarkExtensionPipelineDepth(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.DepthResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtensionPipelineDepth([]int{1, 8}, 8*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Mbps[0], "mbps_depth1")
	b.ReportMetric(last.Mbps[1], "mbps_depth8")
}

func BenchmarkExtensionSecondChance(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.EvictionResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtensionSecondChance(8 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.FIFOPageInsPerMB, "fifo_ins_per_mb")
	b.ReportMetric(last.SecondChancePageInsPerMB, "sc_ins_per_mb")
}

func BenchmarkExtensionGuardedPT(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.GPTResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtensionGuardedPT()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.LinearUS, "linear_us")
	b.ReportMetric(last.GuardedUS, "guarded_us")
	b.ReportMetric(last.Slowdown(), "slowdown")
}

func BenchmarkExtensionStreamPaging(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.StreamPagingResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtensionStreamPaging(8 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.DemandMbps, "mbps_demand")
	b.ReportMetric(last.StreamingMbps, "mbps_streaming")
	b.ReportMetric(last.Speedup(), "speedup")
}

func BenchmarkExtensionRebalance(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.RebalanceResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtensionRebalance(10 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.WithoutMbps, "mbps_without")
	b.ReportMetric(last.WithMbps, "mbps_with")
	b.ReportMetric(float64(last.Moves), "moves")
}

// BenchmarkClusterScale runs the cluster paging scenario on one machine at
// growing domain populations. The deterministic metrics are the scaling
// story: sim_events_per_s is how much simulated work the run performs per
// simulated second, and sim_events_per_domain is the per-domain share — it
// must stay flat (sub-linear total cost) as the population grows, because
// idle domains cost the indexed scheduler, the indexed allocator and the
// incremental crosstalk monitor nothing. Wall-clock ns/op measures the
// simulator's own cost at each scale.
func BenchmarkClusterScale(b *testing.B) {
	for _, n := range []int{100, 1000, 5000} {
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			var last *experiments.ClusterResult
			for i := 0; i < b.N; i++ {
				opt := experiments.DefaultClusterOptions()
				opt.Machines = 1
				opt.DomainsPerMachine = n
				opt.Servers = 1 + n/1000
				r, err := experiments.RunCluster(opt)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			tot := last.Totals()
			if tot.Violations != 0 || tot.Kills != 0 {
				b.Fatalf("QoS breached at %d domains: %+v", n, tot)
			}
			secs := last.Options.Measure.Seconds()
			b.ReportMetric(float64(tot.Events)/secs, "sim_events_per_s")
			b.ReportMetric(float64(tot.Events)/float64(n), "sim_events_per_domain")
		})
	}
}

func BenchmarkMotivationMJPEG(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.MotivationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.MotivationMJPEG(10 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(100*last.QoSMissRate, "qos_miss_pct")
	b.ReportMetric(100*last.FCFSMissRate, "fcfs_miss_pct")
	b.ReportMetric(last.QoSJitterMs, "qos_jitter_ms")
	b.ReportMetric(last.FCFSJitterMs, "fcfs_jitter_ms")
}

// BenchmarkClusterSummary runs a traced two-machine cluster and reports the
// merged observability rollup's deterministic shape: how many fault spans
// the cluster recorded, how many distinct fault-path hops the merged
// latency rollup covers, and the top domain's fault-blocked share. These
// sim_summary_* metrics gate the whole cross-machine pipeline — per-machine
// Summarize, flow-tagged tracing, and the order-independent merge — so any
// drift in what the rollup reports fails benchcmp even when wall-clock
// stays flat.
func BenchmarkClusterSummary(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.ClusterResult
	for i := 0; i < b.N; i++ {
		opt := experiments.DefaultClusterOptions()
		opt.Machines = 2
		opt.DomainsPerMachine = 40
		opt.Servers = 2
		opt.Trace = true
		r, err := experiments.RunCluster(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	sum := last.Summary
	if sum == nil || last.Trace == nil {
		b.Fatal("traced run produced no rollup or no trace")
	}
	if len(sum.TopDomains) == 0 {
		b.Fatal("rollup has no top domains")
	}
	b.ReportMetric(float64(sum.Spans), "sim_summary_spans")
	b.ReportMetric(float64(len(sum.Hops)), "sim_summary_hops")
	b.ReportMetric(100*sum.TopDomains[0].Share(), "sim_summary_top_share_pct")
}
