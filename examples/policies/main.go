// Policies: the pluggable replacement policies side by side — FIFO (the
// paper's scheme), second chance and CLOCK on the E2 hot-set workload: a
// 3-page hot set re-referenced between every cold access, over 6 frames.
// FIFO evicts the hot pages as they age; the reference-aware policies see
// their bits refreshed and spare them, cutting the paging rate. Policies are
// selected per stretch through core.PagerSpec — each domain composes its own
// pager, nothing global changes.
package main

import (
	"fmt"
	"log"
	"time"

	"nemesis/internal/experiments"
	"nemesis/internal/stretchdrv"
)

func main() {
	log.SetFlags(0)
	kinds := []stretchdrv.PolicyKind{
		stretchdrv.PolicyFIFO,
		stretchdrv.PolicySecondChance,
		stretchdrv.PolicyClock,
	}
	fmt.Println("running the hot-set workload once per replacement policy...")
	rows, err := experiments.ExtensionEvictionPolicies(15*time.Second, kinds)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-15s %14s %12s %10s\n", "policy", "page-ins/MB", "progress", "spares")
	for _, r := range rows {
		fmt.Printf("%-15s %14.1f %9.2f Mb/s %10d\n",
			r.Policy, r.PageInsPerMB, r.Mbps, r.Spares)
	}

	fmt.Println("\nthe reference-aware policies keep the hot set resident (each spare")
	fmt.Println("is a referenced page re-armed instead of evicted), so the same")
	fmt.Println("contracts buy more progress per disk transfer than plain FIFO.")
}
