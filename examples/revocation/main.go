// Revocation walk-through: the frames allocator's two-phase protocol from
// §6.2 of the paper, end to end. A "hog" domain takes optimistic frames and
// dirties them; a "needy" domain then claims its guarantee, forcing first
// transparent revocation (unused frames reclaimed silently) and then
// intrusive revocation (the hog is notified and must clean dirty pages to
// its swap file before the deadline).
package main

import (
	"fmt"
	"log"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/core"
	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/vm"
)

func main() {
	log.SetFlags(0)
	cfg := core.DefaultConfig()
	cfg.MemoryFrames = 32 // a tiny machine so contention is easy to force
	sys := core.New(cfg)

	cpuQ := atropos.QoS{P: 100 * time.Millisecond, S: 20 * time.Millisecond, X: true}
	diskQ := atropos.QoS{P: 250 * time.Millisecond, S: 100 * time.Millisecond, L: 10 * time.Millisecond}

	// The hog: 4 guaranteed frames plus up to 24 optimistic ones.
	hog, err := sys.NewDomain("hog", cpuQ, mem.Contract{Guaranteed: 4, Optimistic: 24})
	if err != nil {
		log.Fatal(err)
	}
	st, drv, err := sys.NewPagedStretch(hog, 24*vm.PageSize, 96*vm.PageSize, diskQ)
	if err != nil {
		log.Fatal(err)
	}

	hog.Go("main", func(t *domain.Thread) {
		// Dirty 20 pages: the allocator hands out optimistic frames while
		// memory is plentiful.
		if err := t.Touch(st.Base(), 20*vm.PageSize, vm.AccessWrite); err != nil {
			log.Fatal(err)
		}
		// Leave 4 more frames allocated but unused: transparent-revocation
		// fodder at the top of the frame stack.
		core.PreallocateFrames(t, 4)
	})
	sys.Run(10 * time.Second)
	fmt.Printf("hog holds %d frames (%d guaranteed + optimistic), %d pages dirty in memory\n",
		hog.MemClient().Allocated(), hog.MemClient().Contract().Guaranteed, drv.ResidentPages())

	// The needy domain's guarantee forces the allocator to revoke.
	needy, err := sys.NewDomain("needy", cpuQ, mem.Contract{Guaranteed: 20})
	if err != nil {
		log.Fatal(err)
	}
	needy.Go("main", func(t *domain.Thread) {
		for i := 0; i < 20; i++ {
			t0 := t.Now()
			if _, err := needy.MemClient().AllocFrame(t.Proc()); err != nil {
				log.Fatalf("guaranteed allocation failed: %v", err)
			}
			if wait := t.Now().Sub(t0); wait > 0 {
				fmt.Printf("  frame %2d: waited %8.3f ms (revocation)\n", i+1, wait.Seconds()*1e3)
			} else {
				fmt.Printf("  frame %2d: immediate\n", i+1)
			}
		}
	})
	sys.Run(time.Minute)
	sys.Shutdown()

	fmt.Printf("\nneedy holds %d frames; hog retains %d (its guarantee is %d)\n",
		needy.MemClient().Allocated(), hog.MemClient().Allocated(), hog.MemClient().Contract().Guaranteed)
	fmt.Printf("hog: %d revocation notifications handled, %d pages cleaned to swap, killed=%v\n",
		hog.Stats().Revocations, drv.Stats.PageOuts, hog.Killed())
}
