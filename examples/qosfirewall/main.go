// QoS firewalling: the paper's Fig. 7 scenario as an API example. Three
// domains page in from different parts of the same disk under 10%, 20% and
// 40% guarantees; their progress settles at almost exactly 1:2:4 — each is
// isolated from the others' paging behaviour.
package main

import (
	"fmt"
	"log"
	"time"

	"nemesis/internal/experiments"
)

func main() {
	log.SetFlags(0)
	opt := experiments.DefaultPagingOptions()
	opt.Measure = 20 * time.Second

	fmt.Println("running three self-paging domains with 10/20/40% disk guarantees...")
	r, err := experiments.RunPaging(opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nsustained paging-in bandwidth (Mbit/s):")
	for i, pg := range r.Pagers {
		share := 100 * float64(opt.Slices[i]) / float64(opt.Period)
		fmt.Printf("  %-10s (%2.0f%% of disk): %6.2f\n", pg.Cfg.Name, share, r.MeanMbps[i])
	}
	fmt.Printf("\nratios between consecutive domains (contracts say 2.00): ")
	for i, ratio := range r.Ratios() {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%.2f", ratio)
	}
	fmt.Println()

	fmt.Println("\nlaxity kept every workless span within l = 10 ms:")
	max := 0.0
	for _, v := range r.Log.MaxLax() {
		if v > max {
			max = v
		}
	}
	fmt.Printf("  longest lax charge: %.2f ms\n", max*1e3)
}
