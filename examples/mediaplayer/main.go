// Media player: the paper's motivating example (§5) as a runnable demo.
// "An application which plays a motion-JPEG video from disk should not be
// adversely affected by a compilation started in the background."
//
// A 25 fps player streams 64 KB frames from its own disk partition and
// decodes each in 8 ms; a compilation workload pages and streams source
// code as hard as it can. The scenario runs twice: once with Nemesis-style
// contracts for the player (CPU slice, disk slice with laxity), once on a
// conventional configuration (FCFS disk, free-for-all CPU).
package main

import (
	"fmt"
	"log"
	"time"

	"nemesis/internal/experiments"
)

func main() {
	log.SetFlags(0)
	fmt.Println("playing 20 simulated seconds of 25fps video against a background compile...")
	r, err := experiments.MotivationMJPEG(20 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-28s %12s %12s\n", "", "missed", "jitter")
	fmt.Printf("%-28s %11.1f%% %10.2fms\n", "with QoS contracts", 100*r.QoSMissRate, r.QoSJitterMs)
	fmt.Printf("%-28s %11.1f%% %10.2fms\n", "conventional (FCFS disk)", 100*r.FCFSMissRate, r.FCFSJitterMs)
	fmt.Printf("\n%d frame slots per run. With self-paging and per-domain contracts the\n", r.Frames)
	fmt.Println("player's deadlines hold; without them the compile's disk traffic tears")
	fmt.Println("the video apart — the QoS crosstalk the paper's design eliminates.")
}
