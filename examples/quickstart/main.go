// Quickstart: build a simulated Nemesis machine, create one self-paging
// domain with a tiny physical allocation and a larger virtual stretch,
// write and read back data that must survive round trips through the
// User-Safe Backing Store, and print what happened.
package main

import (
	"fmt"
	"log"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/core"
	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/vm"
)

func main() {
	log.SetFlags(0)

	// A machine: 64 MB RAM, the paper's Quantum VP3221 disk, swap on the
	// second half of the disk.
	sys := core.New(core.DefaultConfig())

	// A domain with contracts for every resource it will use:
	//   CPU:  20 ms per 100 ms (eligible for slack),
	//   RAM:  4 guaranteed frames (32 KB),
	//   disk: 100 ms per 250 ms for its swap file, laxity 10 ms.
	dom, err := sys.NewDomain("quickstart",
		atropos.QoS{P: 100 * time.Millisecond, S: 20 * time.Millisecond, X: true},
		mem.Contract{Guaranteed: 4})
	if err != nil {
		log.Fatal(err)
	}

	// A 1 MB stretch (128 pages) backed by a paged stretch driver with a
	// 4 MB swap file: far more virtual than physical memory, so the
	// domain pages against itself — and only itself.
	st, drv, err := sys.NewPagedStretch(dom, 1<<20, 4<<20,
		atropos.QoS{P: 250 * time.Millisecond, S: 100 * time.Millisecond, L: 10 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}

	dom.Go("main", func(t *domain.Thread) {
		// Grab the guaranteed frames up front, as time-sensitive Nemesis
		// applications do, so no later allocation can block.
		if err := core.PreallocateFrames(t, 4); err != nil {
			log.Fatal(err)
		}

		// Write a recognisable pattern across all 128 pages. With only 4
		// frames, most pages will be evicted to swap along the way.
		page := make([]byte, vm.PageSize)
		for pg := 0; pg < st.Pages(); pg++ {
			for i := range page {
				page[i] = byte((pg + i) % 251)
			}
			if err := t.WriteAt(st.PageBase(pg), page); err != nil {
				log.Fatal(err)
			}
		}

		// Read everything back and verify: every byte has been through
		// the frame store, and most pages through the disk.
		bad := 0
		for pg := 0; pg < st.Pages(); pg++ {
			if err := t.ReadAt(st.PageBase(pg), page); err != nil {
				log.Fatal(err)
			}
			for i := range page {
				if page[i] != byte((pg+i)%251) {
					bad++
				}
			}
		}
		fmt.Printf("verified %d pages, %d corrupt bytes\n", st.Pages(), bad)
	})

	sys.Run(2 * time.Minute)
	sys.Shutdown()

	s := drv.Stats
	fmt.Printf("simulated time: %v\n", sys.Sim.Now())
	fmt.Printf("page faults: %d (fast path %d), page-ins: %d, page-outs: %d, evictions: %d\n",
		s.Faults, s.FastFaults, s.PageIns, s.PageOuts, s.Evictions)
	fmt.Printf("frames held: %d of %d guaranteed; swap bloks free: %d\n",
		dom.MemClient().Allocated(), dom.MemClient().Contract().Guaranteed, drv.SwapFreeBloks())
	if ds, ok := sys.USD.Stats(drv.Swap().Name()); ok {
		fmt.Printf("disk: %d transactions, %v charged (%v of it lax)\n", ds.Txns, ds.Charged, ds.LaxCharged)
	}
}
