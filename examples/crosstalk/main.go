// Crosstalk: self-paging versus a shared external pager, side by side —
// the paper's Fig. 2 argument as a measurement. A victim pages sequentially
// while an aggressor faults as fast as it can. Under self-paging the victim
// is firewalled by its own contracts; under the microkernel-style external
// pager the two share one FCFS fault queue, one frame pool and one disk
// contract, and the victim's throughput collapses.
package main

import (
	"fmt"
	"log"
	"time"

	"nemesis/internal/experiments"
)

func main() {
	log.SetFlags(0)
	fmt.Println("measuring victim paging throughput, alone and with an aggressor...")
	r, err := experiments.AblationCrosstalk(12 * time.Second)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-18s %12s %15s %10s\n", "", "alone", "with aggressor", "retained")
	fmt.Printf("%-18s %9.2f Mb/s %12.2f Mb/s %9.0f%%\n",
		"self-paging", r.SelfAloneMbps, r.SelfContendedMbps, 100*r.SelfIsolation())
	fmt.Printf("%-18s %9.2f Mb/s %12.2f Mb/s %9.0f%%\n",
		"external pager", r.ExtAloneMbps, r.ExtContendedMbps, 100*r.ExtIsolation())

	fmt.Println("\nself-paging keeps the victim at its contracted rate; the external")
	fmt.Println("pager lets the aggressor's faults consume the victim's service —")
	fmt.Println("the QoS crosstalk the paper's design eliminates.")
}
