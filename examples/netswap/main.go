// Netswap: paging over a simulated network. A domain's pager cleans to and
// faults from a remote swap server reached over a lossy link — the E8
// experiments in miniature. First a latency sweep shows where each fault
// millisecond goes (wire out, remote disk, wire back); then a tiered
// local+remote backing pages straight through a remote outage by degrading
// onto its local tier, exactly as a self-paging domain should: the failure
// costs only the domain that chose to page remotely, and even it keeps its
// QoS at reduced capacity.
package main

import (
	"fmt"
	"log"
	"time"

	"nemesis/internal/experiments"
)

func main() {
	log.SetFlags(0)

	fmt.Println("paging against a remote swap server at three link latencies...")
	latencies := []time.Duration{200 * time.Microsecond, time.Millisecond, 2 * time.Millisecond}
	sweep, err := experiments.RunNetswapSweep(latencies, []float64{0, 0.05}, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfault-latency breakdown (p50, ms):")
	fmt.Println("  latency  loss  Mbit/s  net.out  remote.store  net.back  retries")
	for _, c := range sweep.Cells {
		fmt.Printf("  %-7v  %.2f  %6.2f  %7.3f  %12.3f  %8.3f  %7d\n",
			c.Latency, c.Loss, c.Mbps, c.NetOutP50Ms, c.StoreP50Ms, c.NetBackP50Ms, c.Retries)
	}

	fmt.Println("\ntiered local+remote backing through a 5 s remote outage...")
	deg, err := experiments.RunNetswapDegrade(5 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthroughput before/during/after (Mbit/s): %.2f / %.2f / %.2f\n",
		deg.Mbps[0], deg.Mbps[1], deg.Mbps[2])
	fmt.Printf("degraded during the outage: %v\n", deg.DegradedDuringOutage)
	fmt.Printf("pages demoted to the remote tier: %d, cleaned locally while degraded: %d\n",
		deg.Stats.Demotions, deg.Stats.LocalFallbacks)
	if deg.Mbps[1] > deg.Mbps[0]/2 {
		fmt.Println("the outage never showed up in the domain's paging QoS.")
	}
}
